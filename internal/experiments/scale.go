// Package experiments contains one runner per table and figure of the TiFL
// paper's evaluation (Section 3.3 case study and Section 5): each runner
// builds the scenario's client population, profiles and tiers it, executes
// every policy the figure compares, and returns paper-shaped output
// (training-time bars, accuracy-over-rounds/time series, comparison
// tables). cmd/tifl-bench drives all runners; bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

// Scale sets the experiment sizes. Small keeps the full suite in CI/bench
// budgets; Full restores the paper's scale (500 synthetic rounds, 2000 LEAF
// rounds, 50 clients, |C|=5).
type Scale struct {
	Rounds     int // synthetic-dataset rounds (paper: 500)
	LEAFRounds int // FEMNIST rounds (paper: 2000)
	// Clients is |K| for the resident-population experiments (paper: 50):
	// every runner that BuildClients-materializes its population sizes it
	// from this. Population is the registered population N of the
	// event-driven scale experiment (ext_million) only — clients there are
	// lazily derived per selection, so N can exceed resident memory by
	// orders of magnitude and must never feed an O(N) materialization loop.
	Clients         int
	Population      int // ext_million population (paper-scale extension: 1e6)
	ClientsPerRound int // |C| (paper: 5)
	TrainSize       int // total training samples per dataset
	TestSize        int // global test samples
	EvalEvery       int // evaluate global accuracy every k rounds
	LocalTestMax    int // per-client local test shard cap
	TestPerTier     int // adaptive policy per-tier eval cap
	Interval        int // adaptive policy probability update interval I
	Seed            int64
	Parallel        bool
}

// SmallScale is the default for benchmarks and tests: the same populations
// and policies at reduced round counts and data sizes.
func SmallScale() Scale {
	return Scale{
		Rounds: 60, LEAFRounds: 80,
		Clients: 50, Population: 10_000, ClientsPerRound: 5,
		TrainSize: 4000, TestSize: 800,
		EvalEvery: 5, LocalTestMax: 40, TestPerTier: 150, Interval: 5,
		Seed: 1, Parallel: true,
	}
}

// FullScale is the paper's configuration.
func FullScale() Scale {
	return Scale{
		Rounds: 500, LEAFRounds: 2000,
		Clients: 50, Population: 1_000_000, ClientsPerRound: 5,
		TrainSize: 20000, TestSize: 4000,
		EvalEvery: 5, LocalTestMax: 80, TestPerTier: 400, Interval: 20,
		Seed: 1, Parallel: true,
	}
}

// LatencyModel is the resource model shared by all experiments.
var LatencyModel = simres.DefaultModel

// newRng returns a seeded rand.Rand.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// cifarSpec is the experiments' CIFAR-10 stand-in. Noise is raised from the
// library default so the paper's round budget sits mid-learning-curve —
// real CIFAR-10 reaches ~0.7 at 500 rounds in the paper, and heterogeneity
// effects vanish once a task saturates (calibration in EXPERIMENTS.md).
func cifarSpec() dataset.Spec {
	s := dataset.CIFAR10Like
	s.NoiseStd = 1.8
	return s
}

// nonIIDFeatureSkew is the per-client feature offset applied in non-IID
// scenarios: the paper notes non-IID(k) skews the *feature* distribution
// relative to IID even at k=10.
const nonIIDFeatureSkew = 0.4

// mnistSpec / fmnistSpec raise the library defaults' noise like cifarSpec
// does, keeping the paper's round budget on the learning curve (real MNIST
// sits at ~0.93–0.99 after 500 rounds in Fig. 5, not at exactly 1.0).
func mnistSpec() dataset.Spec {
	s := dataset.MNISTLike
	s.NoiseStd = 1.5
	return s
}

func fmnistSpec() dataset.Spec {
	s := dataset.FashionMNISTLike
	s.NoiseStd = 1.7
	return s
}

// hiddenFor sizes the MLP hidden layer per dataset family, keeping CIFAR
// the hardest workload as in the paper.
func hiddenFor(spec dataset.Spec) int {
	switch spec.Name {
	case "cifar10":
		return 32
	case "femnist":
		return 64
	default:
		return 24
	}
}

// engineConfig assembles the flcore configuration with the paper's
// synthetic-dataset hyperparameters: RMSprop, initial LR 0.01, decay 0.995
// per round, batch size 10, one local epoch.
func (s Scale) engineConfig(spec dataset.Spec) flcore.Config {
	hidden := hiddenFor(spec)
	return flcore.Config{
		Rounds:          s.Rounds,
		ClientsPerRound: s.ClientsPerRound,
		LocalEpochs:     1,
		BatchSize:       10,
		Seed:            s.Seed,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, spec.Dim, []int{hidden}, spec.NumClasses, 0)
		},
		Optimizer: func(round int) nn.Optimizer {
			return nn.NewRMSprop(0.01*math.Pow(0.995, float64(round)), 0.995)
		},
		Latency:   LatencyModel,
		EvalEvery: s.EvalEvery,
		EvalBatch: 256,
		Parallel:  s.Parallel,
	}
}

// scenario is one experimental data/resource configuration: the dataset, a
// per-client partition, and a CPU assignment, from which fresh client
// populations are constructed for every policy run.
type scenario struct {
	name  string
	spec  dataset.Spec
	train *dataset.Dataset
	test  *dataset.Dataset
	parts [][]int
	cpus  []float64
	// featureSkew applies a per-client feature offset after partitioning
	// (non-IID scenarios only).
	featureSkew float64
}

// heterogeneity kinds for scenario construction.
type heterogeneity int

const (
	hetResource heterogeneity = iota // heterogeneous CPUs, IID equal data
	hetQuantity                      // equal CPUs, quantity-skewed data
	hetNonIID                        // equal CPUs, class-skewed data
	hetResourceNonIID
	hetResourceQuantity
	hetCombine // resource + quantity + non-IID
)

// equalCPUs is the paper's homogeneous-resource setting (2 CPUs each).
func equalCPUs(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 2
	}
	return out
}

// newScenario builds a scenario for the given heterogeneity mix.
// classesPerClient applies to non-IID variants (paper default 5 for CIFAR).
func (s Scale) newScenario(name string, spec dataset.Spec, het heterogeneity, classesPerClient int) scenario {
	rng := rand.New(rand.NewSource(s.Seed + 1000))
	train := dataset.Generate(spec, s.TrainSize, s.Seed+1)
	test := dataset.Generate(spec, s.TestSize, s.Seed+2)
	skew := 0.0
	switch het {
	case hetNonIID, hetResourceNonIID, hetCombine:
		skew = nonIIDFeatureSkew
	}
	var parts [][]int
	var cpus []float64
	switch het {
	case hetResource:
		parts = dataset.PartitionIID(train.Len(), s.Clients, rng)
		cpus = simres.AssignGroups(s.Clients, simres.GroupsCIFAR)
	case hetQuantity:
		parts = dataset.PartitionQuantity(train.Len(), s.Clients, dataset.QuantityFractions, rng)
		cpus = equalCPUs(s.Clients)
	case hetNonIID:
		parts = dataset.PartitionByClass(train, s.Clients, classesPerClient, rng)
		cpus = equalCPUs(s.Clients)
	case hetResourceNonIID:
		parts = dataset.PartitionByClass(train, s.Clients, classesPerClient, rng)
		cpus = simres.AssignGroups(s.Clients, simres.GroupsCIFAR)
	case hetResourceQuantity:
		parts = dataset.PartitionQuantity(train.Len(), s.Clients, dataset.QuantityFractions, rng)
		cpus = simres.AssignGroups(s.Clients, cpuGroupsFor(spec))
	case hetCombine:
		parts = dataset.PartitionClassQuantity(train, s.Clients, classesPerClient, dataset.QuantityFractions, rng)
		cpus = simres.AssignGroups(s.Clients, simres.GroupsCIFAR)
	default:
		panic(fmt.Sprintf("experiments: unknown heterogeneity %d", het))
	}
	return scenario{name: name, spec: spec, train: train, test: test, parts: parts, cpus: cpus, featureSkew: skew}
}

// cpuGroupsFor maps dataset family to the paper's CPU allocation table.
func cpuGroupsFor(spec dataset.Spec) []float64 {
	switch spec.Name {
	case "mnist", "fmnist":
		return simres.GroupsMNIST
	default:
		return simres.GroupsCIFAR
	}
}

// clients builds a fresh client population (new data copies, clean local
// state) for one policy run.
func (sc scenario) clients(s Scale) []*flcore.Client {
	cl := flcore.BuildClients(sc.train, sc.test, sc.parts, sc.cpus, s.LocalTestMax, s.Seed+3)
	if sc.featureSkew > 0 {
		for i, c := range cl {
			dataset.ApplyFeatureSkew(c.Train, newRng(s.Seed+4000+int64(i)), sc.featureSkew)
		}
	}
	return cl
}

// tiers profiles a reference population and groups it into 5 tiers.
// Quantile tiering is the experiment default: the testbed's 5 equal-size
// CPU groups map exactly onto 5 equal-count tiers (the paper also reports 5
// tiers); EqualWidth is exercised by the tiering ablation.
func (sc scenario) tiers(s Scale) ([]core.Tier, []*flcore.Client) {
	ref := sc.clients(s)
	prof := core.Profile(ref, LatencyModel, core.ProfilerConfig{SyncRounds: 5, Tmax: 1e6, Epochs: 1, Seed: s.Seed + 4})
	return core.BuildTiers(prof.Latency, 5, core.Quantile), ref
}

// policyRun names one selector configuration to execute.
type policyRun struct {
	name     string
	kind     policyKind
	static   core.StaticPolicy
	adaptive core.AdaptiveConfig
}

type policyKind int

const (
	kindVanilla policyKind = iota
	kindStatic
	kindAdaptive
)

func vanillaRun() policyRun { return policyRun{name: "vanilla", kind: kindVanilla} }

func staticRun(p core.StaticPolicy) policyRun {
	return policyRun{name: p.Name, kind: kindStatic, static: p}
}

func (s Scale) adaptiveRun() policyRun {
	return policyRun{name: "TiFL", kind: kindAdaptive, adaptive: core.AdaptiveConfig{
		ClientsPerRound: s.ClientsPerRound,
		Interval:        s.Interval,
		Temperature:     2,
		TestPerTier:     s.TestPerTier,
		Seed:            s.Seed + 5,
	}}
}

// execute runs every policy against the scenario and returns results keyed
// by policy name, in input order.
func (s Scale) execute(sc scenario, runs []policyRun) ([]string, map[string]*flcore.Result) {
	tiers, refClients := sc.tiers(s)
	names := make([]string, 0, len(runs))
	out := make(map[string]*flcore.Result, len(runs))
	// One client population serves every policy run (and doubles as the
	// adaptive policy's reference population): BuildClients is
	// deterministically seeded, so rebuilding would produce byte-identical
	// shards; training never mutates a shard, and the only per-run client
	// state — the error-feedback residual — is reset by NewEngine.
	clients := refClients
	for _, run := range runs {
		var sel flcore.Selector
		switch run.kind {
		case kindVanilla:
			sel = &flcore.RandomSelector{NumClients: len(clients), ClientsPerRound: s.ClientsPerRound}
		case kindStatic:
			sel = core.NewStaticSelector(tiers, run.static, s.ClientsPerRound)
		case kindAdaptive:
			sel = core.NewAdaptiveSelector(tiers, refClients, run.adaptive)
		default:
			panic(fmt.Sprintf("experiments: unknown policy kind %d", run.kind))
		}
		eng := flcore.NewEngine(s.engineConfig(sc.spec), clients, sc.test)
		out[run.name] = eng.Run(sel)
		names = append(names, run.name)
	}
	return names, out
}

// cifarPolicies is the Table 1 five-tier policy ladder plus vanilla.
func (s Scale) cifarPolicyRuns() []policyRun {
	return []policyRun{
		vanillaRun(),
		staticRun(core.PolicySlow),
		staticRun(core.PolicyUniform),
		staticRun(core.PolicyRandom),
		staticRun(core.PolicyFast),
	}
}

// mnistPolicyRuns is the Table 1 MNIST/FMNIST ladder plus vanilla.
func (s Scale) mnistPolicyRuns() []policyRun {
	return []policyRun{
		vanillaRun(),
		staticRun(core.PolicyUniform),
		staticRun(core.PolicyFast1),
		staticRun(core.PolicyFast2),
		staticRun(core.PolicyFast3),
	}
}
