package privacy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAmplifyUniform(t *testing.T) {
	base := Guarantee{Epsilon: 1.0, Delta: 1e-5}
	// Paper setting: |C|=5 of |K|=50 → q = 0.1.
	got := AmplifyUniform(base, 5, 50)
	if math.Abs(got.Epsilon-0.1) > 1e-12 || math.Abs(got.Delta-1e-6) > 1e-18 {
		t.Fatalf("amplified = %+v", got)
	}
}

func TestAmplifyUniformInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("selecting 10 of 5 did not panic")
		}
	}()
	AmplifyUniform(Guarantee{1, 1e-5}, 10, 5)
}

func TestTierSamplingRates(t *testing.T) {
	// 5 tiers of 10 clients, uniform weights θ=1, |C|=5:
	// q_j = (1/5)·5/10 = 0.1 per tier.
	thetas := []float64{1, 1, 1, 1, 1}
	sizes := []int{10, 10, 10, 10, 10}
	qs := TierSamplingRates(thetas, sizes, 5)
	for j, q := range qs {
		if math.Abs(q-0.1) > 1e-12 {
			t.Fatalf("q[%d] = %v, want 0.1", j, q)
		}
	}
}

func TestTierSamplingRatesSkewed(t *testing.T) {
	// A tier picked more often (θ=3) with fewer members has a higher rate.
	qs := TierSamplingRates([]float64{3, 1}, []int{5, 20}, 4)
	if qs[0] <= qs[1] {
		t.Fatalf("hot small tier rate %v should exceed cold big tier %v", qs[0], qs[1])
	}
}

func TestTierSamplingRateCapped(t *testing.T) {
	qs := TierSamplingRates([]float64{10}, []int{2}, 10)
	if qs[0] > 1 {
		t.Fatalf("sampling rate %v exceeds 1", qs[0])
	}
}

func TestAmplifyTieredUsesQmax(t *testing.T) {
	base := Guarantee{Epsilon: 2, Delta: 1e-4}
	g, qmax := AmplifyTiered(base, []float64{3, 1}, []int{5, 20}, 4)
	wantQ := (3.0 / 2.0) * 4.0 / 5.0
	if wantQ > 1 {
		wantQ = 1
	}
	if math.Abs(qmax-wantQ) > 1e-12 {
		t.Fatalf("qmax = %v, want %v", qmax, wantQ)
	}
	if math.Abs(g.Epsilon-qmax*2) > 1e-12 {
		t.Fatalf("epsilon = %v", g.Epsilon)
	}
}

func TestUniformTieringMatchesVanillaAmplification(t *testing.T) {
	// Sanity check of the paper's claim: with equal tier weights and equal
	// tier sizes the tiered guarantee equals the uniform-selection one.
	base := Guarantee{Epsilon: 1, Delta: 1e-5}
	uni := AmplifyUniform(base, 5, 50)
	tiered, _ := AmplifyTiered(base, []float64{1, 1, 1, 1, 1}, []int{10, 10, 10, 10, 10}, 5)
	if math.Abs(uni.Epsilon-tiered.Epsilon) > 1e-12 {
		t.Fatalf("uniform %v vs tiered %v", uni.Epsilon, tiered.Epsilon)
	}
}

func TestComposeRounds(t *testing.T) {
	g := ComposeRounds(Guarantee{0.1, 1e-6}, 500)
	if math.Abs(g.Epsilon-50) > 1e-9 || math.Abs(g.Delta-5e-4) > 1e-12 {
		t.Fatalf("composed = %+v", g)
	}
}

func TestClipL2(t *testing.T) {
	u := []float64{3, 4} // norm 5
	norm := ClipL2(u, 1)
	if norm != 5 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	got := math.Hypot(u[0], u[1])
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v", got)
	}
	// Within bound: untouched.
	v := []float64{0.3, 0.4}
	ClipL2(v, 1)
	if v[0] != 0.3 || v[1] != 0.4 {
		t.Fatalf("in-bound vector modified: %v", v)
	}
}

// Property: after ClipL2 the norm never exceeds the bound, and direction is
// preserved.
func TestClipL2Property(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		u := make([]float64, n)
		orig := make([]float64, n)
		for i := range u {
			u[i] = r.NormFloat64() * 10
			orig[i] = u[i]
		}
		clip := 0.1 + r.Float64()*5
		ClipL2(u, clip)
		s, dot, so := 0.0, 0.0, 0.0
		for i := range u {
			s += u[i] * u[i]
			dot += u[i] * orig[i]
			so += orig[i] * orig[i]
		}
		if math.Sqrt(s) > clip*(1+1e-9) {
			return false
		}
		return dot >= -1e-12 && dot*dot >= s*so*(1-1e-9) // parallel
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianSigmaScaling(t *testing.T) {
	g := Guarantee{Epsilon: 1, Delta: 1e-5}
	s1 := GaussianSigma(1, g)
	if s2 := GaussianSigma(2, g); math.Abs(s2-2*s1) > 1e-12 {
		t.Fatalf("sigma not linear in clip: %v vs %v", s2, 2*s1)
	}
	tight := GaussianSigma(1, Guarantee{Epsilon: 0.5, Delta: 1e-5})
	if tight <= s1 {
		t.Fatal("smaller epsilon must need more noise")
	}
}

func TestAddGaussianNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	u := make([]float64, n)
	AddGaussianNoise(u, 2.0, rng)
	mean, varSum := 0.0, 0.0
	for _, v := range u {
		mean += v
	}
	mean /= float64(n)
	for _, v := range u {
		varSum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varSum / float64(n))
	if math.Abs(mean) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Fatalf("noise stats mean %v sd %v, want 0 and 2", mean, sd)
	}
}

func TestPrivatizeUpdateBoundsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := []float64{100, 0, 0}
	PrivatizeUpdate(u, 1, Guarantee{Epsilon: 1, Delta: 1e-5}, rng)
	// The raw signal (norm 100) must have been clipped to ≤1 before noise;
	// with sigma ≈ 4.84 the result stays in a modest range w.h.p.
	norm := math.Sqrt(u[0]*u[0] + u[1]*u[1] + u[2]*u[2])
	if norm > 30 {
		t.Fatalf("privatized norm %v suggests clipping failed", norm)
	}
}

func TestGuaranteeString(t *testing.T) {
	s := Guarantee{Epsilon: 0.5, Delta: 1e-5}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	cases := []func(){
		func() { TierSamplingRates([]float64{1}, []int{1, 2}, 1) },
		func() { TierSamplingRates([]float64{1}, []int{0}, 1) },
		func() { ComposeRounds(Guarantee{1, 1e-5}, -1) },
		func() { ClipL2([]float64{1}, 0) },
		func() { GaussianSigma(1, Guarantee{0, 1e-5}) },
		func() { GaussianSigma(1, Guarantee{1, 0}) },
		func() { AddGaussianNoise([]float64{1}, -1, rand.New(rand.NewSource(1))) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
