// Package privacy implements the differential-privacy compatibility
// analysis of TiFL (Section 4.6) plus the client-side mechanisms it
// presumes: L2 update clipping and the Gaussian mechanism for client-level
// DP-FedAvg.
//
// The paper's argument: if each client's local training round is (ε, δ)-DP,
// then selecting a random subset each round *amplifies* the guarantee —
// uniform selection of |C| from |K| gives (O(qε), qδ) with q = |C|/|K|;
// tiered selection gives (O(q_max·ε), q_max·δ) where
// q_j = (θ_j / n_tiers) · |C| / |n_j| is tier j's per-client sampling rate
// and q_max is the largest across tiers. Both are implemented here exactly
// as stated so experiments can report per-policy privacy budgets.
package privacy

import (
	"fmt"
	"math"
	"math/rand"
)

// Guarantee is an (ε, δ) differential-privacy guarantee.
type Guarantee struct {
	Epsilon float64
	Delta   float64
}

// String renders the guarantee like "(0.50, 1.0e-05)-DP".
func (g Guarantee) String() string {
	return fmt.Sprintf("(%.4g, %.3g)-DP", g.Epsilon, g.Delta)
}

// AmplifyUniform applies subsampling amplification for vanilla FL's uniform
// client selection: q = |C| / |K|, yielding (qε, qδ) per round (we report
// the standard first-order bound; the paper writes O(qε)).
func AmplifyUniform(base Guarantee, clientsPerRound, totalClients int) Guarantee {
	if clientsPerRound <= 0 || totalClients <= 0 || clientsPerRound > totalClients {
		panic(fmt.Sprintf("privacy: invalid selection %d of %d", clientsPerRound, totalClients))
	}
	q := float64(clientsPerRound) / float64(totalClients)
	return Guarantee{Epsilon: q * base.Epsilon, Delta: q * base.Delta}
}

// TierSamplingRates returns each tier's per-client sampling rate
// q_j = (θ_j / n_tiers) · |C| / |n_j| from Section 4.6, where θ_j are the
// tier selection weights (θ_j/n_tiers is the probability tier j is chosen),
// tierSizes are the per-tier client counts |n_j|, and clientsPerRound is
// |C|.
func TierSamplingRates(thetas []float64, tierSizes []int, clientsPerRound int) []float64 {
	if len(thetas) != len(tierSizes) {
		panic(fmt.Sprintf("privacy: %d weights vs %d tier sizes", len(thetas), len(tierSizes)))
	}
	n := float64(len(thetas))
	out := make([]float64, len(thetas))
	for j, th := range thetas {
		if tierSizes[j] <= 0 {
			panic(fmt.Sprintf("privacy: tier %d has size %d", j, tierSizes[j]))
		}
		q := (th / n) * float64(clientsPerRound) / float64(tierSizes[j])
		if q > 1 {
			q = 1 // a client cannot be sampled more than surely
		}
		out[j] = q
	}
	return out
}

// ThetasFromProbs converts a tier-selection probability vector (summing to
// 1) to the paper's θ weights, which satisfy P(tier j) = θ_j / n_tiers.
func ThetasFromProbs(probs []float64) []float64 {
	n := float64(len(probs))
	out := make([]float64, len(probs))
	for i, p := range probs {
		out[i] = p * n
	}
	return out
}

// AmplifyTiered applies subsampling amplification under tier-based
// selection: the guarantee is governed by the worst (largest) per-client
// sampling rate across tiers, q_max, yielding (q_max·ε, q_max·δ).
func AmplifyTiered(base Guarantee, thetas []float64, tierSizes []int, clientsPerRound int) (Guarantee, float64) {
	qs := TierSamplingRates(thetas, tierSizes, clientsPerRound)
	qmax := 0.0
	for _, q := range qs {
		if q > qmax {
			qmax = q
		}
	}
	return Guarantee{Epsilon: qmax * base.Epsilon, Delta: qmax * base.Delta}, qmax
}

// ComposeRounds applies basic sequential composition over R rounds:
// (Rε, Rδ). Conservative but sufficient for reporting budget growth.
func ComposeRounds(per Guarantee, rounds int) Guarantee {
	if rounds < 0 {
		panic(fmt.Sprintf("privacy: negative rounds %d", rounds))
	}
	return Guarantee{Epsilon: float64(rounds) * per.Epsilon, Delta: float64(rounds) * per.Delta}
}

// ClipL2 scales update down to L2 norm `clip` if it exceeds it, in place,
// and returns the pre-clip norm. Clipping bounds each client's sensitivity,
// the prerequisite for the Gaussian mechanism.
func ClipL2(update []float64, clip float64) float64 {
	if clip <= 0 {
		panic(fmt.Sprintf("privacy: clip bound %v must be positive", clip))
	}
	s := 0.0
	for _, v := range update {
		s += v * v
	}
	norm := math.Sqrt(s)
	if norm > clip {
		scale := clip / norm
		for i := range update {
			update[i] *= scale
		}
	}
	return norm
}

// GaussianSigma returns the noise multiplier σ that makes one release of an
// L2-sensitivity-`clip` quantity (ε, δ)-DP via the Gaussian mechanism:
// σ = clip·√(2 ln(1.25/δ))/ε (the classic analytic bound, valid for ε ≤ 1).
func GaussianSigma(clip float64, g Guarantee) float64 {
	if g.Epsilon <= 0 || g.Delta <= 0 || g.Delta >= 1 {
		panic(fmt.Sprintf("privacy: invalid guarantee %+v", g))
	}
	return clip * math.Sqrt(2*math.Log(1.25/g.Delta)) / g.Epsilon
}

// AddGaussianNoise perturbs update in place with N(0, σ²) noise per
// coordinate using rng.
func AddGaussianNoise(update []float64, sigma float64, rng *rand.Rand) {
	if sigma < 0 {
		panic(fmt.Sprintf("privacy: negative sigma %v", sigma))
	}
	for i := range update {
		update[i] += sigma * rng.NormFloat64()
	}
}

// PrivatizeUpdate clips update to L2 norm clip and adds Gaussian noise
// calibrated to make the release (ε, δ)-DP, in place — one client's local
// privacy step in client-level DP-FedAvg.
func PrivatizeUpdate(update []float64, clip float64, g Guarantee, rng *rand.Rand) {
	ClipL2(update, clip)
	AddGaussianNoise(update, GaussianSigma(clip, g), rng)
}
