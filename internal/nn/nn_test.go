package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{
		W:  tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2),
		B:  tensor.FromSlice([]float64{10, 20}, 2),
		dW: tensor.New(2, 2),
		dB: tensor.New(2),
	}
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	if y.Data[0] != 1+3+10 || y.Data[1] != 2+4+20 {
		t.Fatalf("Dense forward = %v", y.Data)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2}, 1, 3)
	y := r.Forward(x, true)
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("ReLU forward = %v", y.Data)
	}
	g := r.Backward(tensor.FromSlice([]float64{5, 5, 5}, 1, 3))
	if g.Data[0] != 0 || g.Data[1] != 0 || g.Data[2] != 5 {
		t.Fatalf("ReLU backward = %v", g.Data)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(1)), 0.5)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 4)
	y := d.Forward(x, false)
	if !y.AllClose(x, 0) {
		t.Fatal("dropout at eval must be identity")
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDropout(rng, 0.25)
	n := 20000
	x := tensor.Full(1, 1, n)
	y := d.Forward(x, true)
	mean := y.Mean()
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("inverted dropout mean = %v, want ≈1", mean)
	}
	zeros := 0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(n)
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("dropped fraction = %v, want ≈0.25", frac)
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dropout rate 1.0 did not panic")
		}
	}()
	NewDropout(rand.New(rand.NewSource(1)), 1.0)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.RandNormal(rand.New(rand.NewSource(3)), 0, 1, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("Flatten shape = %v", y.Shape())
	}
	back := f.Backward(y)
	if !back.AllClose(x, 0) {
		t.Fatal("Flatten backward must restore shape and values")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k := 1+r.Intn(5), 2+r.Intn(8)
		p := Softmax(tensor.RandNormal(r, 0, 3, n, k))
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < k; j++ {
				v := p.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float64{100, 0, 0}, 1, 3)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0})
	if loss > 1e-9 {
		t.Fatalf("loss of confident correct prediction = %v", loss)
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := tensor.RandNormal(rng, 0, 1, 3, 4)
	labels := []int{1, 3, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const h = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - h
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-5 {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{5})
}

// numericalGradCheck verifies model end-to-end backward gradients against
// central differences on every parameter.
func numericalGradCheck(t *testing.T, m *Model, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	logits := m.Forward(x, true)
	_, grad := SoftmaxCrossEntropy(logits, labels)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	params, grads := m.Params(), m.Grads()
	const h = 1e-5
	for pi, p := range params {
		for j := 0; j < p.Size(); j += 1 + p.Size()/17 { // sample indices
			orig := p.Data[j]
			p.Data[j] = orig + h
			lp, _ := SoftmaxCrossEntropy(m.Forward(x, false), labels)
			p.Data[j] = orig - h
			lm, _ := SoftmaxCrossEntropy(m.Forward(x, false), labels)
			p.Data[j] = orig
			num := (lp - lm) / (2 * h)
			got := grads[pi].Data[j]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: analytic %v, numeric %v", pi, j, got, num)
			}
		}
	}
}

func TestDenseMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 4, []int{6}, 3, 0)
	x := tensor.RandNormal(rng, 0, 1, 5, 4)
	numericalGradCheck(t, m, x, []int{0, 1, 2, 1, 0}, 1e-4)
}

func TestConvModelGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewModel(
		NewConv2D(rng, 1, 2, 3, 3, 1, 1),
		NewReLU(),
		NewMaxPool(2, 2),
		NewFlatten(),
		NewDense(rng, 2*3*3, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 6, 6)
	numericalGradCheck(t, m, x, []int{0, 2}, 1e-3)
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewConv2D(rng, 2, 3, 3, 3, 1, 1)
	x := tensor.RandNormal(rng, 0, 1, 1, 2, 5, 5)
	got := c.Forward(x, false)
	// Naive direct convolution.
	for oc := 0; oc < 3; oc++ {
		for oy := 0; oy < 5; oy++ {
			for ox := 0; ox < 5; ox++ {
				s := c.B.Data[oc]
				for ic := 0; ic < 2; ic++ {
					for ky := 0; ky < 3; ky++ {
						for kx := 0; kx < 3; kx++ {
							iy, ix := oy-1+ky, ox-1+kx
							if iy < 0 || iy >= 5 || ix < 0 || ix >= 5 {
								continue
							}
							s += x.At(0, ic, iy, ix) * c.W.At(oc, (ic*3+ky)*3+kx)
						}
					}
				}
				if math.Abs(got.At(0, oc, oy, ox)-s) > 1e-9 {
					t.Fatalf("conv mismatch at (%d,%d,%d): %v vs %v", oc, oy, ox, got.At(0, oc, oy, ox), s)
				}
			}
		}
	}
}

func TestModelLearnsToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP(rng, 2, []int{16}, 2, 0)
	// Two Gaussian blobs.
	n := 200
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		cx := float64(2*c) - 1
		x.Set(cx+0.3*rng.NormFloat64(), i, 0)
		x.Set(cx+0.3*rng.NormFloat64(), i, 1)
	}
	opt := NewSGD(0.1, 0.9)
	for epoch := 0; epoch < 30; epoch++ {
		m.TrainBatch(x, labels, opt)
	}
	acc, _ := m.Evaluate(x, labels, 64)
	if acc < 0.95 {
		t.Fatalf("toy accuracy = %v, want ≥0.95", acc)
	}
}

func TestEvaluateBatchedMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, 3, []int{5}, 4, 0)
	x := tensor.RandNormal(rng, 0, 1, 17, 3)
	labels := make([]int, 17)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	a1, l1 := m.Evaluate(x, labels, 0)
	a2, l2 := m.Evaluate(x, labels, 4)
	if a1 != a2 || math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("batched eval (%v,%v) != whole (%v,%v)", a2, l2, a1, l1)
	}
}

func TestWeightsVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewMLP(rng, 4, []int{8, 8}, 3, 0)
	b := NewMLP(rand.New(rand.NewSource(11)), 4, []int{8, 8}, 3, 0)
	w := a.WeightsVector()
	if len(w) != a.NumParams() {
		t.Fatalf("WeightsVector length %d, NumParams %d", len(w), a.NumParams())
	}
	b.SetWeightsVector(w)
	x := tensor.RandNormal(rng, 0, 1, 3, 4)
	if !a.Forward(x, false).AllClose(b.Forward(x, false), 1e-12) {
		t.Fatal("models disagree after weight transfer")
	}
}

func TestSetWeightsVectorLengthMismatchPanics(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(12)), 2, nil, 2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("short weight vector did not panic")
		}
	}()
	m.SetWeightsVector([]float64{1, 2, 3})
}

func TestSGDStepDirection(t *testing.T) {
	p := tensor.FromSlice([]float64{1}, 1)
	g := tensor.FromSlice([]float64{2}, 1)
	NewSGD(0.5, 0).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if p.Data[0] != 0 {
		t.Fatalf("SGD step: %v, want 0", p.Data[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := tensor.FromSlice([]float64{0}, 1)
	g := tensor.FromSlice([]float64{1}, 1)
	opt := NewSGD(0.1, 0.9)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}) // v=-0.1, p=-0.1
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}) // v=-0.19, p=-0.29
	if math.Abs(p.Data[0]+0.29) > 1e-12 {
		t.Fatalf("momentum trajectory = %v, want -0.29", p.Data[0])
	}
}

func TestRMSpropConvergesOnQuadratic(t *testing.T) {
	p := tensor.FromSlice([]float64{5}, 1)
	g := tensor.New(1)
	opt := NewRMSprop(0.05, 0)
	for i := 0; i < 500; i++ {
		g.Data[0] = 2 * p.Data[0] // d/dx x² = 2x
		opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	}
	if math.Abs(p.Data[0]) > 0.05 {
		t.Fatalf("RMSprop did not converge: x = %v", p.Data[0])
	}
}

func TestRMSpropDecay(t *testing.T) {
	opt := NewRMSprop(0.01, 0.995)
	opt.DecayLR()
	opt.DecayLR()
	want := 0.01 * 0.995 * 0.995
	if math.Abs(opt.LR-want) > 1e-15 {
		t.Fatalf("LR after two decays = %v, want %v", opt.LR, want)
	}
}

func TestBuilderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mnist := NewPaperMNISTCNN(rng, 28, 28, 1, 10)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 28, 28)
	out := mnist.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("MNIST CNN output shape = %v", out.Shape())
	}
	cifar := NewPaperCIFARCNN(rng, 32, 32, 3, 10)
	xc := tensor.RandNormal(rng, 0, 1, 1, 3, 32, 32)
	outc := cifar.Forward(xc, false)
	if outc.Dim(0) != 1 || outc.Dim(1) != 10 {
		t.Fatalf("CIFAR CNN output shape = %v", outc.Shape())
	}
}

func TestLogisticBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewLogistic(rng, 5, 3)
	if m.NumParams() != 5*3+3 {
		t.Fatalf("logistic params = %d", m.NumParams())
	}
}

func TestEncodeDecodeWeights(t *testing.T) {
	w := []float64{0, 1.5, -2.25, math.Pi}
	got, err := DecodeWeights(EncodeWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		if got[i] != v {
			t.Fatalf("round trip = %v, want %v", got, w)
		}
	}
}

func TestDecodeWeightsErrors(t *testing.T) {
	if _, err := DecodeWeights([]byte{1, 2}); err == nil {
		t.Fatal("short buffer must error")
	}
	buf := EncodeWeights([]float64{1})
	buf[0] ^= 0xFF
	if _, err := DecodeWeights(buf); err == nil {
		t.Fatal("bad magic must error")
	}
	buf2 := EncodeWeights([]float64{1, 2})
	if _, err := DecodeWeights(buf2[:len(buf2)-1]); err == nil {
		t.Fatal("truncated buffer must error")
	}
}

// Property: encode/decode round-trips arbitrary weight vectors.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(w []float64) bool {
		got, err := DecodeWeights(EncodeWeights(w))
		if err != nil || len(got) != len(w) {
			return false
		}
		for i := range w {
			if math.Float64bits(got[i]) != math.Float64bits(w[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
