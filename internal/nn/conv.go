package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches, implemented by lowering
// each batch to a column matrix (im2col) and multiplying against the kernel
// matrix, the standard CPU formulation. The im2col matrix and every
// intermediate are cached scratch reused across batches.
type Conv2D struct {
	InC, OutC     int
	KH, KW        int
	Stride, Pad   int
	W             *tensor.Tensor // (OutC, InC*KH*KW)
	B             *tensor.Tensor // (OutC)
	dW, dB        *tensor.Tensor
	cols          *tensor.Tensor // cached im2col(x) for backward
	inN, inH, inW int
	outH, outW    int
	trained       bool // last Forward was a training pass (cols is valid)

	ws               *Workspace
	flat, out        *tensor.Tensor // forward scratch
	gflat, dcols, dx *tensor.Tensor // backward scratch
}

// NewConv2D returns a convolution layer with Glorot-uniform kernels.
func NewConv2D(rng *rand.Rand, inC, outC, kh, kw, stride, pad int) *Conv2D {
	if stride < 1 {
		panic(fmt.Sprintf("nn: conv stride %d < 1", stride))
	}
	fanIn := inC * kh * kw
	fanOut := outC * kh * kw
	return &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W:  tensor.GlorotUniform(rng, fanIn, fanOut, outC, inC*kh*kw),
		B:  tensor.New(outC),
		dW: tensor.New(outC, inC*kh*kw),
		dB: tensor.New(outC),
	}
}

// Forward implements Layer. The bias add is fused into the matmul kernel's
// final store.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	c.cols = c.ws.Ensure(c.cols, n*oh*ow, c.InC*c.KH*c.KW)
	tensor.Im2ColInto(c.cols, x, c.KH, c.KW, c.Stride, c.Pad)
	// The im2col scratch is shared between training and eval passes, so an
	// eval forward invalidates a pending backward (flagged via trained).
	c.trained = train
	if train {
		c.inN, c.inH, c.inW = n, h, w
		c.outH, c.outW = oh, ow
	}
	// (N*OH*OW, OutC) = cols · Wᵀ + b
	c.flat = c.ws.Ensure(c.flat, n*oh*ow, c.OutC)
	tensor.MatMulABTBiasInto(c.flat, c.cols, c.W, c.B)
	c.out = c.ws.Ensure(c.out, n, c.OutC, oh, ow)
	nhwcToNCHWInto(c.out, c.flat, n, oh, ow, c.OutC)
	return c.out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	c.backwardParams(grad)
	// dcols = gflat · W → scatter back to image space.
	c.dcols = c.ws.Ensure(c.dcols, c.inN*c.outH*c.outW, c.InC*c.KH*c.KW)
	tensor.MatMulInto(c.dcols, c.gflat, c.W)
	c.dx = c.ws.Ensure(c.dx, c.inN, c.InC, c.inH, c.inW)
	tensor.Col2ImInto(c.dx, c.dcols, c.KH, c.KW, c.Stride, c.Pad)
	return c.dx
}

// backwardParams computes dW and dB only (no input gradient) — the
// first-layer fast path used by Model.TrainBatch, which for a conv layer
// skips a full matmul plus the col2im scatter per batch.
func (c *Conv2D) backwardParams(grad *tensor.Tensor) {
	if c.cols == nil || !c.trained {
		panic("nn: Conv2D.Backward without a preceding Forward(train=true)")
	}
	// grad: (N, OutC, OH, OW) → flat (N*OH*OW, OutC)
	c.gflat = c.ws.Ensure(c.gflat, c.inN*c.outH*c.outW, c.OutC)
	nchwToNHWCInto(c.gflat, grad, c.inN, c.OutC, c.outH, c.outW)
	// dW = gflatᵀ · cols → (OutC, InC*KH*KW)
	tensor.MatMulATBInto(c.dW, c.gflat, c.cols)
	c.dB.Zero()
	for r := 0; r < c.gflat.Dim(0); r++ {
		row := c.gflat.Data[r*c.OutC : (r+1)*c.OutC]
		for j, g := range row {
			c.dB.Data[j] += g
		}
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

func (c *Conv2D) setWorkspace(ws *Workspace) { c.ws = ws }

func (c *Conv2D) releaseScratch() {
	for _, t := range []*tensor.Tensor{c.cols, c.flat, c.out, c.gflat, c.dcols, c.dx} {
		c.ws.Release(t)
	}
	c.cols, c.flat, c.out, c.gflat, c.dcols, c.dx = nil, nil, nil, nil, nil, nil
}

// nhwcToNCHWInto converts a (N*OH*OW, C) activation matrix into the
// (N, C, OH, OW) tensor out, overwriting every element.
func nhwcToNCHWInto(out, flat *tensor.Tensor, n, oh, ow, ch int) {
	i := 0
	for img := 0; img < n; img++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				row := flat.Data[i*ch : (i+1)*ch]
				for cIdx, v := range row {
					out.Data[((img*ch+cIdx)*oh+y)*ow+x] = v
				}
				i++
			}
		}
	}
}

// nchwToNHWCInto converts a (N, C, OH, OW) tensor into the (N*OH*OW, C)
// matrix out, overwriting every element.
func nchwToNHWCInto(out, x *tensor.Tensor, n, ch, oh, ow int) {
	i := 0
	for img := 0; img < n; img++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				row := out.Data[i*ch : (i+1)*ch]
				for cIdx := 0; cIdx < ch; cIdx++ {
					row[cIdx] = x.Data[((img*ch+cIdx)*oh+y)*ow+xx]
				}
				i++
			}
		}
	}
}

// MaxPool is a 2-D max-pooling layer with a square window.
type MaxPool struct {
	Size, Stride int
	arg          []int
	inShape      []int
	trained      bool // last Forward was a training pass (arg is valid)

	ws      *Workspace
	out, dx *tensor.Tensor
}

// NewMaxPool returns a max-pooling layer; the paper's CNNs use 2×2.
func NewMaxPool(size, stride int) *MaxPool {
	return &MaxPool{Size: size, Stride: stride}
}

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c := x.Dim(0), x.Dim(1)
	oh := tensor.ConvOutSize(x.Dim(2), m.Size, m.Stride, 0)
	ow := tensor.ConvOutSize(x.Dim(3), m.Size, m.Stride, 0)
	m.out = m.ws.Ensure(m.out, n, c, oh, ow)
	m.arg = tensor.MaxPool2DInto(m.out, m.arg, x, m.Size, m.Stride)
	// arg is shared between training and eval passes, so an eval forward
	// invalidates a pending backward (flagged via trained).
	m.trained = train
	if train {
		m.inShape = append(m.inShape[:0], x.Shape()...)
	}
	return m.out
}

// Backward implements Layer.
func (m *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !m.trained {
		panic("nn: MaxPool.Backward without a preceding Forward(train=true)")
	}
	m.dx = m.ws.Ensure(m.dx, m.inShape...)
	tensor.MaxUnpool2DInto(m.dx, grad, m.arg)
	return m.dx
}

// Params implements Layer.
func (m *MaxPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool) Grads() []*tensor.Tensor { return nil }

func (m *MaxPool) setWorkspace(ws *Workspace) { m.ws = ws }

func (m *MaxPool) releaseScratch() {
	m.ws.Release(m.out)
	m.ws.Release(m.dx)
	m.out, m.dx = nil, nil
}
