package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW batches, implemented by lowering
// each batch to a column matrix (im2col) and multiplying against the kernel
// matrix, the standard CPU formulation.
type Conv2D struct {
	InC, OutC      int
	KH, KW         int
	Stride, Pad    int
	W              *tensor.Tensor // (OutC, InC*KH*KW)
	B              *tensor.Tensor // (OutC)
	dW, dB         *tensor.Tensor
	cols           *tensor.Tensor // cached im2col(x) for backward
	inN, inH, inW  int
	outH, outW     int
	lastTrainShape []int
}

// NewConv2D returns a convolution layer with Glorot-uniform kernels.
func NewConv2D(rng *rand.Rand, inC, outC, kh, kw, stride, pad int) *Conv2D {
	if stride < 1 {
		panic(fmt.Sprintf("nn: conv stride %d < 1", stride))
	}
	fanIn := inC * kh * kw
	fanOut := outC * kh * kw
	return &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		W:  tensor.GlorotUniform(rng, fanIn, fanOut, outC, inC*kh*kw),
		B:  tensor.New(outC),
		dW: tensor.New(outC, inC*kh*kw),
		dB: tensor.New(outC),
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh := tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	cols := tensor.Im2Col(x, c.KH, c.KW, c.Stride, c.Pad) // (N*OH*OW, InC*KH*KW)
	if train {
		c.cols = cols
		c.inN, c.inH, c.inW = n, h, w
		c.outH, c.outW = oh, ow
	}
	// (N*OH*OW, OutC) = cols · Wᵀ
	flat := tensor.MatMulABT(cols, c.W)
	for r := 0; r < flat.Dim(0); r++ {
		row := flat.Data[r*c.OutC : (r+1)*c.OutC]
		for j, b := range c.B.Data {
			row[j] += b
		}
	}
	return nhwcToNCHW(flat, n, oh, ow, c.OutC)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward before Forward(train=true)")
	}
	// grad: (N, OutC, OH, OW) → flat (N*OH*OW, OutC)
	gflat := nchwToNHWC(grad, c.inN, c.OutC, c.outH, c.outW)
	// dW = gflatᵀ · cols → (OutC, InC*KH*KW)
	c.dW = tensor.MatMulATB(gflat, c.cols)
	c.dB.Zero()
	for r := 0; r < gflat.Dim(0); r++ {
		row := gflat.Data[r*c.OutC : (r+1)*c.OutC]
		for j, g := range row {
			c.dB.Data[j] += g
		}
	}
	// dcols = gflat · W → scatter back to image space.
	dcols := tensor.MatMul(gflat, c.W)
	return tensor.Col2Im(dcols, c.inN, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// nhwcToNCHW converts a (N*OH*OW, C) activation matrix into (N, C, OH, OW).
func nhwcToNCHW(flat *tensor.Tensor, n, oh, ow, ch int) *tensor.Tensor {
	out := tensor.New(n, ch, oh, ow)
	i := 0
	for img := 0; img < n; img++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				row := flat.Data[i*ch : (i+1)*ch]
				for cIdx, v := range row {
					out.Data[((img*ch+cIdx)*oh+y)*ow+x] = v
				}
				i++
			}
		}
	}
	return out
}

// nchwToNHWC converts a (N, C, OH, OW) tensor into a (N*OH*OW, C) matrix.
func nchwToNHWC(x *tensor.Tensor, n, ch, oh, ow int) *tensor.Tensor {
	out := tensor.New(n*oh*ow, ch)
	i := 0
	for img := 0; img < n; img++ {
		for y := 0; y < oh; y++ {
			for xx := 0; xx < ow; xx++ {
				row := out.Data[i*ch : (i+1)*ch]
				for cIdx := 0; cIdx < ch; cIdx++ {
					row[cIdx] = x.Data[((img*ch+cIdx)*oh+y)*ow+xx]
				}
				i++
			}
		}
	}
	return out
}

// MaxPool is a 2-D max-pooling layer with a square window.
type MaxPool struct {
	Size, Stride int
	arg          []int
	inShape      []int
}

// NewMaxPool returns a max-pooling layer; the paper's CNNs use 2×2.
func NewMaxPool(size, stride int) *MaxPool {
	return &MaxPool{Size: size, Stride: stride}
}

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, m.Size, m.Stride)
	if train {
		m.arg = arg
		m.inShape = append(m.inShape[:0], x.Shape()...)
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxUnpool2D(grad, m.arg, m.inShape)
}

// Params implements Layer.
func (m *MaxPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool) Grads() []*tensor.Tensor { return nil }
