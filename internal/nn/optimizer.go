package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters in place from their gradients.
type Optimizer interface {
	Step(params, grads []*tensor.Tensor)
}

// StatePooled is implemented by optimizers whose per-parameter state
// buffers (momentum, second-moment caches) can live in a shared pool. The
// FL engines construct a fresh optimizer every client round; drawing the
// state from the training goroutine's workspace pool makes that churn
// allocation-free. AttachStatePool must be called before the first Step;
// ReleaseState returns the buffers when the optimizer is discarded. State
// buffers start zeroed either way, so pooling does not change results.
type StatePooled interface {
	AttachStatePool(p *tensor.Pool)
	ReleaseState()
}

// optState is a lazily initialized set of per-parameter state buffers,
// optionally drawn from a pool. The pooled unit is a *Tensor so the
// init/release round trip is allocation-free once the pool is warm (raw
// slice Put would burn a header per buffer).
type optState struct {
	pool    *tensor.Pool
	bufs    [][]float64
	tensors []*tensor.Tensor
}

// init allocates one zeroed buffer per parameter on first use.
func (s *optState) init(params []*tensor.Tensor) {
	if s.bufs != nil {
		return
	}
	s.bufs = make([][]float64, len(params))
	if s.pool != nil {
		s.tensors = make([]*tensor.Tensor, len(params))
	}
	for i, p := range params {
		if s.pool != nil {
			t := s.pool.GetTensorZeroed(p.Size())
			s.tensors[i] = t
			s.bufs[i] = t.Data
		} else {
			s.bufs[i] = make([]float64, p.Size())
		}
	}
}

func (s *optState) release() {
	for _, t := range s.tensors {
		s.pool.PutTensor(t)
	}
	s.bufs, s.tensors = nil, nil
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      optState
}

// NewSGD returns an SGD optimizer; the LEAF FEMNIST default in the paper is
// lr=0.004 with no momentum.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// AttachStatePool implements StatePooled.
func (s *SGD) AttachStatePool(p *tensor.Pool) { s.vel.pool = p }

// ReleaseState implements StatePooled.
func (s *SGD) ReleaseState() { s.vel.release() }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if s.Momentum == 0 {
		for i, p := range params {
			p.AxpyInPlace(-s.LR, grads[i])
		}
		return
	}
	s.vel.init(params)
	lr, mom := s.LR, s.Momentum
	for i, p := range params {
		v := s.vel.bufs[i]
		g := grads[i].Data
		for j := range v {
			v[j] = mom*v[j] - lr*g[j]
			p.Data[j] += v[j]
		}
	}
}

// RMSprop is the optimizer used for the paper's synthetic-dataset
// experiments: initial learning rate 0.01 with multiplicative decay 0.995
// applied once per local training pass (see DecayLR).
type RMSprop struct {
	LR    float64 // current learning rate
	Rho   float64 // gradient second-moment smoothing, typically 0.9
	Eps   float64 // numerical stabilizer
	Decay float64 // multiplicative LR decay factor, e.g. 0.995
	cache optState
}

// NewRMSprop returns an RMSprop optimizer with the paper's hyperparameters
// (rho 0.9, eps 1e-7) at the given initial learning rate and decay.
func NewRMSprop(lr, decay float64) *RMSprop {
	return &RMSprop{LR: lr, Rho: 0.9, Eps: 1e-7, Decay: decay}
}

// AttachStatePool implements StatePooled.
func (r *RMSprop) AttachStatePool(p *tensor.Pool) { r.cache.pool = p }

// ReleaseState implements StatePooled.
func (r *RMSprop) ReleaseState() { r.cache.release() }

// Step implements Optimizer. The hyperparameters are hoisted into locals so
// the inner loop does not reload them past the parameter stores (the
// compiler cannot prove p.Data writes leave the receiver untouched); the
// per-element arithmetic is unchanged.
func (r *RMSprop) Step(params, grads []*tensor.Tensor) {
	r.cache.init(params)
	lr, rho, oneMinusRho, eps := r.LR, r.Rho, 1-r.Rho, r.Eps
	for i, p := range params {
		c := r.cache.bufs[i]
		g := grads[i].Data
		pd := p.Data
		for j := range c {
			gj := g[j]
			cj := rho*c[j] + oneMinusRho*gj*gj
			c[j] = cj
			pd[j] -= lr * gj / (math.Sqrt(cj) + eps)
		}
	}
}

// DecayLR applies one multiplicative decay step (LR *= Decay). The FL round
// loop calls this once per round, matching the paper's "initial learning
// rate 0.01 and decay 0.995".
func (r *RMSprop) DecayLR() {
	if r.Decay > 0 {
		r.LR *= r.Decay
	}
}
