package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters in place from their gradients.
type Optimizer interface {
	Step(params, grads []*tensor.Tensor)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      [][]float64
}

// NewSGD returns an SGD optimizer; the LEAF FEMNIST default in the paper is
// lr=0.004 with no momentum.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if s.Momentum == 0 {
		for i, p := range params {
			p.AxpyInPlace(-s.LR, grads[i])
		}
		return
	}
	if s.vel == nil {
		s.vel = make([][]float64, len(params))
		for i, p := range params {
			s.vel[i] = make([]float64, p.Size())
		}
	}
	for i, p := range params {
		v := s.vel[i]
		g := grads[i].Data
		for j := range v {
			v[j] = s.Momentum*v[j] - s.LR*g[j]
			p.Data[j] += v[j]
		}
	}
}

// RMSprop is the optimizer used for the paper's synthetic-dataset
// experiments: initial learning rate 0.01 with multiplicative decay 0.995
// applied once per local training pass (see DecayLR).
type RMSprop struct {
	LR    float64 // current learning rate
	Rho   float64 // gradient second-moment smoothing, typically 0.9
	Eps   float64 // numerical stabilizer
	Decay float64 // multiplicative LR decay factor, e.g. 0.995
	cache [][]float64
}

// NewRMSprop returns an RMSprop optimizer with the paper's hyperparameters
// (rho 0.9, eps 1e-7) at the given initial learning rate and decay.
func NewRMSprop(lr, decay float64) *RMSprop {
	return &RMSprop{LR: lr, Rho: 0.9, Eps: 1e-7, Decay: decay}
}

// Step implements Optimizer.
func (r *RMSprop) Step(params, grads []*tensor.Tensor) {
	if r.cache == nil {
		r.cache = make([][]float64, len(params))
		for i, p := range params {
			r.cache[i] = make([]float64, p.Size())
		}
	}
	for i, p := range params {
		c := r.cache[i]
		g := grads[i].Data
		for j := range c {
			c[j] = r.Rho*c[j] + (1-r.Rho)*g[j]*g[j]
			p.Data[j] -= r.LR * g[j] / (math.Sqrt(c[j]) + r.Eps)
		}
	}
}

// DecayLR applies one multiplicative decay step (LR *= Decay). The FL round
// loop calls this once per round, matching the paper's "initial learning
// rate 0.01 and decay 0.995".
func (r *RMSprop) DecayLR() {
	if r.Decay > 0 {
		r.LR *= r.Decay
	}
}
