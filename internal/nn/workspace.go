package nn

import (
	"repro/internal/tensor"
)

// Workspace is the per-training-goroutine scratch arena of the hot path: a
// size-bucketed tensor pool from which layers draw their activation,
// gradient, im2col, and mask buffers. Attach one to a model with
// Model.SetWorkspace; after that, steady-state training batches allocate
// (almost) nothing — each layer keeps its buffers across batches while
// shapes repeat, and returns them to the pool on Model.ReleaseScratch or
// when the batch shape changes.
//
// Ownership rules:
//
//   - A Workspace must only be used by one goroutine at a time (the
//     training loops in internal/flcore keep one per worker goroutine and
//     hand it to whichever model replica that goroutine is training).
//   - A layer owns the buffers it drew until it releases them; buffers
//     handed to the pool must never be touched again by the old owner.
//   - Tensors returned by Forward/Backward on a workspace-attached model
//     are owned by the model's layers and are overwritten by the next
//     batch; callers that need them to survive must copy.
//
// A nil *Workspace is valid everywhere and falls back to plain allocation
// while still reusing each layer's cached buffer when shapes repeat.
type Workspace struct {
	pool tensor.Pool
}

// NewWorkspace returns an empty workspace with its own buffer pool.
func NewWorkspace() *Workspace { return &Workspace{} }

// Pool exposes the workspace's underlying buffer pool so adjacent hot-path
// scratch (mini-batch staging, delta buffers) can share storage with the
// layer workspaces.
func (w *Workspace) Pool() *tensor.Pool {
	if w == nil {
		return nil
	}
	return &w.pool
}

// Ensure returns a tensor of the given shape for scratch use. When cur
// already has exactly that shape it is returned unchanged (the steady-state
// path: zero allocation); otherwise cur is recycled into the pool and a
// pooled (or, with a nil workspace, freshly allocated) tensor is returned.
// The contents of the result are unspecified.
func (w *Workspace) Ensure(cur *tensor.Tensor, shape ...int) *tensor.Tensor {
	if cur != nil && sameShape(cur, shape) {
		return cur
	}
	if w == nil {
		return tensor.New(shape...)
	}
	w.pool.PutTensor(cur)
	return w.pool.GetTensor(shape...)
}

// Release returns a scratch tensor to the pool (no-op for nil workspace or
// nil tensor). The caller must drop every reference to t.
func (w *Workspace) Release(t *tensor.Tensor) {
	if w == nil {
		return
	}
	w.pool.PutTensor(t)
}

func sameShape(t *tensor.Tensor, shape []int) bool {
	s := t.Shape()
	if len(s) != len(shape) {
		return false
	}
	for i, d := range s {
		if shape[i] != d {
			return false
		}
	}
	return true
}

// workspaced is implemented by layers that draw scratch buffers from a
// workspace. setWorkspace attaches the arena (nil detaches); releaseScratch
// hands every cached scratch buffer back to the pool so the workspace can
// serve the next model.
type workspaced interface {
	setWorkspace(ws *Workspace)
	releaseScratch()
}

// SetWorkspace attaches ws to the model and all its layers. Pass nil to
// detach. Attaching is idempotent and cheap, so training loops may call it
// every time a replica is (re)acquired.
func (m *Model) SetWorkspace(ws *Workspace) {
	m.ws = ws
	for _, l := range m.Layers {
		if wl, ok := l.(workspaced); ok {
			wl.setWorkspace(ws)
		}
	}
}

// ReleaseScratch returns every cached scratch buffer (layer activations,
// gradients, im2col matrices, the loss-gradient buffer) to the attached
// workspace's pool. Trainable parameters and their gradient tensors are
// kept — they belong to the model. Call it when the model goes idle so the
// workspace can serve another replica of the same architecture without
// growing.
func (m *Model) ReleaseScratch() {
	for _, l := range m.Layers {
		if wl, ok := l.(workspaced); ok {
			wl.releaseScratch()
		}
	}
	if m.ws != nil {
		m.ws.Release(m.lossGrad)
	}
	m.lossGrad = nil
}
