package nn

import (
	"encoding/binary"
	"fmt"
	"math"
)

// weightsMagic guards against decoding garbage as a weight vector.
const weightsMagic uint32 = 0x7F1F_0001

// EncodeWeights serializes a flat weight vector to a compact binary form
// (magic, count, little-endian float64s). This is the wire format used by
// internal/flnet between clients and aggregators.
func EncodeWeights(w []float64) []byte {
	buf := make([]byte, 8+8*len(w))
	binary.LittleEndian.PutUint32(buf[0:4], weightsMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(w)))
	for i, v := range w {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	return buf
}

// DecodeWeights parses a buffer produced by EncodeWeights.
func DecodeWeights(buf []byte) ([]float64, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("nn: weight buffer too short (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != weightsMagic {
		return nil, fmt.Errorf("nn: bad weight buffer magic")
	}
	n := int(binary.LittleEndian.Uint32(buf[4:8]))
	if len(buf) != 8+8*n {
		return nil, fmt.Errorf("nn: weight buffer length %d, want %d for %d weights", len(buf), 8+8*n, n)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8+8*i:]))
	}
	return w, nil
}
