package nn

import (
	"fmt"
	"math/rand"
)

// Replica is an allocation-free stand-in for "build a fresh model replica
// every round": the FL engines create one model per client per round only
// to overwrite its weights with the global vector, so the build's real
// effects are (a) fixing the architecture and (b) advancing the round's rng
// past the weight-initialization draws before dropout consumes it. A
// Replica caches the model from its first build and, on every later
// acquire, reseeds the same rng object and burns exactly the number of
// source draws the factory consumed — leaving model, rng object identity,
// and rng stream position bit-identical to a fresh factory call, without
// reallocating a single parameter tensor.
//
// The factory must consume a seed-independent number of rng source draws
// during construction and must produce the same architecture every call.
// This package's builders qualify: Glorot-uniform init draws exactly one
// source step per weight via rand.Float64. (Float64's guard against a
// rounded-to-1.0 draw can in principle retry, at probability ≈2⁻⁵³ per
// weight — negligible against any other source of nondeterminism.)
//
// A Replica is not safe for concurrent use; the engines keep one per
// training goroutine, next to that goroutine's Workspace.
type Replica struct {
	factory func(*rand.Rand) *Model
	model   *Model
	rng     *rand.Rand
	src     *swappableSource
	draws   int64
}

// NewReplica returns a replica cache over the given model factory.
func NewReplica(factory func(*rand.Rand) *Model) *Replica {
	if factory == nil {
		panic("nn: NewReplica with nil factory")
	}
	return &Replica{factory: factory}
}

// Acquire returns the cached model replica and its rng, positioned exactly
// as factory(rand.New(rand.NewSource(seed))) would leave a fresh build:
// same architecture, rng stream advanced past the init draws. The caller
// must overwrite the weights (SetWeightsVector) before use — on reuse they
// still hold the previous round's values, not the seed's init values.
func (r *Replica) Acquire(seed int64) (*Model, *rand.Rand) {
	if r.model == nil {
		r.src = &swappableSource{inner: newSource64(seed)}
		r.rng = rand.New(r.src)
		before := r.src.calls
		r.model = r.factory(r.rng)
		r.draws = r.src.calls - before
		return r.model, r.rng
	}
	// Re-seeding the existing source reproduces rand.NewSource(seed)
	// exactly (NewSource is allocate-then-Seed) without the ~5 KB source
	// allocation per acquire.
	r.src.inner.Seed(seed)
	for i := int64(0); i < r.draws; i++ {
		r.src.inner.Uint64()
	}
	return r.model, r.rng
}

// swappableSource lets one long-lived rand.Rand object (captured by Dropout
// layers at build time) be re-pointed at a fresh deterministic source each
// round, while counting source draws so the factory's init consumption can
// be replayed. Every rngSource method advances its state by exactly one
// step regardless of which interface method was called, so burning draws
// with Uint64 reproduces any mix of Int63/Uint64 consumption.
type swappableSource struct {
	inner rand.Source64
	calls int64
}

func (s *swappableSource) Int63() int64 {
	s.calls++
	return s.inner.Int63()
}

func (s *swappableSource) Uint64() uint64 {
	s.calls++
	return s.inner.Uint64()
}

func (s *swappableSource) Seed(seed int64) { s.inner.Seed(seed) }

func newSource64(seed int64) rand.Source64 {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// rand.NewSource has returned a Source64 since Go 1.8; this guards
		// against a hypothetical runtime that drops it.
		panic(fmt.Sprintf("nn: rand.NewSource(%d) is not a Source64", seed))
	}
	return src
}
