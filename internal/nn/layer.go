// Package nn is a from-scratch neural-network substrate: layers (dense,
// conv2d, maxpool, dropout, relu, flatten), softmax cross-entropy loss,
// SGD and RMSprop optimizers, sequential models, and weight (de)serialization.
//
// It stands in for the TensorFlow training stack the TiFL paper runs on each
// client: the FL layers (internal/flcore, internal/tier) only ever see a
// model's flat weight vector and its train/eval entry points, exactly the
// interface a real FL client exposes to the aggregator.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a sequential model.
//
// Forward consumes the previous layer's activation; when train is true the
// layer may keep whatever state its Backward pass needs (inputs, masks,
// argmax indices). Backward consumes dLoss/dOutput and returns dLoss/dInput,
// accumulating parameter gradients internally until the optimizer step.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable tensors (possibly none); Grads
	// returns the matching gradient tensors in the same order.
	Params() []*tensor.Tensor
	Grads() []*tensor.Tensor
}

// Dense is a fully connected layer computing y = x·W + b for a batch of
// row vectors x with shape (batch, in).
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	in     *tensor.Tensor // cached input for backward
}

// NewDense returns a dense layer with Glorot-uniform weights and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		W:  tensor.GlorotUniform(rng, in, out, in, out),
		B:  tensor.New(out),
		dW: tensor.New(in, out),
		dB: tensor.New(out),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		d.in = x
	}
	out := tensor.MatMul(x, d.W)
	cols := d.B.Size()
	for r := 0; r < out.Dim(0); r++ {
		row := out.Data[r*cols : (r+1)*cols]
		for j, b := range d.B.Data {
			row[j] += b
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.in == nil {
		panic("nn: Dense.Backward before Forward(train=true)")
	}
	d.dW = tensor.MatMulATB(d.in, grad)
	cols := d.B.Size()
	d.dB.Zero()
	for r := 0; r < grad.Dim(0); r++ {
		row := grad.Data[r*cols : (r+1)*cols]
		for j, g := range row {
			d.dB.Data[j] += g
		}
	}
	return tensor.MatMulABT(grad, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if train {
		if cap(r.mask) < len(out.Data) {
			r.mask = make([]bool, len(out.Data))
		}
		r.mask = r.mask[:len(out.Data)]
	}
	for i, v := range out.Data {
		pos := v > 0
		if !pos {
			out.Data[i] = 0
		}
		if train {
			r.mask[i] = pos
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Dropout zeroes a fraction Rate of activations during training and scales
// the survivors by 1/(1-Rate) (inverted dropout), so inference needs no
// rescaling. The paper's CNNs use 0.25 after pooling and 0.5 before the
// final dense layer.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout returns a dropout layer driven by rng; rate must be in [0, 1).
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		return x
	}
	out := x.Clone()
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]float64, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	keep := 1 - d.Rate
	scale := 1 / keep
	for i := range out.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			out.Data[i] *= scale
		} else {
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.Rate == 0 {
		return grad
	}
	out := grad.Clone()
	for i := range out.Data {
		out.Data[i] *= d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes (N, C, H, W) activations to (N, C·H·W) so convolutional
// features can feed dense layers.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
