// Package nn is a from-scratch neural-network substrate: layers (dense,
// conv2d, maxpool, dropout, relu, flatten), softmax cross-entropy loss,
// SGD and RMSprop optimizers, sequential models, and weight (de)serialization.
//
// It stands in for the TensorFlow training stack the TiFL paper runs on each
// client: the FL layers (internal/flcore, internal/tier) only ever see a
// model's flat weight vector and its train/eval entry points, exactly the
// interface a real FL client exposes to the aggregator.
//
// The training hot path is allocation-free at steady state: layers keep
// their activation and gradient buffers across batches (drawn from an
// attached Workspace pool when one is set), so a Forward/Backward result is
// owned by the layer that produced it and is overwritten by the next batch.
// A Model is not safe for concurrent use.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a sequential model.
//
// Forward consumes the previous layer's activation; when train is true the
// layer may keep whatever state its Backward pass needs (inputs, masks,
// argmax indices). Backward consumes dLoss/dOutput and returns dLoss/dInput,
// accumulating parameter gradients internally until the optimizer step.
// Returned tensors are layer-owned scratch, valid until the layer's next
// Forward/Backward call.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable tensors (possibly none); Grads
	// returns the matching gradient tensors in the same order.
	Params() []*tensor.Tensor
	Grads() []*tensor.Tensor
}

// Dense is a fully connected layer computing y = x·W + b for a batch of
// row vectors x with shape (batch, in).
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	in     *tensor.Tensor // cached input for backward

	ws      *Workspace
	out, dx *tensor.Tensor // cached scratch, reused across batches
}

// NewDense returns a dense layer with Glorot-uniform weights and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		W:  tensor.GlorotUniform(rng, in, out, in, out),
		B:  tensor.New(out),
		dW: tensor.New(in, out),
		dB: tensor.New(out),
	}
}

// Forward implements Layer. The bias add is fused into the matmul kernel.
// Because layer scratch is reused across passes, an eval forward invalidates
// any pending backward: it drops the cached training input, so a Backward
// that follows it panics instead of reading clobbered buffers.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		d.in = x
	} else {
		d.in = nil
	}
	d.out = d.ws.Ensure(d.out, x.Dim(0), d.W.Dim(1))
	tensor.MatMulBiasInto(d.out, x, d.W, d.B)
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d.backwardParams(grad)
	d.dx = d.ws.Ensure(d.dx, grad.Dim(0), d.W.Dim(0))
	tensor.MatMulABTInto(d.dx, grad, d.W)
	return d.dx
}

// backwardParams computes dW and dB only (no input gradient) — the
// first-layer fast path used by Model.TrainBatch.
func (d *Dense) backwardParams(grad *tensor.Tensor) {
	if d.in == nil {
		panic("nn: Dense.Backward before Forward(train=true)")
	}
	tensor.MatMulATBInto(d.dW, d.in, grad)
	cols := d.B.Size()
	d.dB.Zero()
	for r := 0; r < grad.Dim(0); r++ {
		row := grad.Data[r*cols : (r+1)*cols]
		for j, g := range row {
			d.dB.Data[j] += g
		}
	}
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

func (d *Dense) setWorkspace(ws *Workspace) { d.ws = ws }

func (d *Dense) releaseScratch() {
	d.ws.Release(d.out)
	d.ws.Release(d.dx)
	d.out, d.dx, d.in = nil, nil, nil
}

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool

	ws        *Workspace
	out, gout *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = r.ws.Ensure(r.out, x.Shape()...)
	xd := x.Data
	od := r.out.Data[:len(xd)]
	if train {
		if cap(r.mask) < len(xd) {
			r.mask = make([]bool, len(xd))
		}
		r.mask = r.mask[:len(xd)]
		mask := r.mask
		for i, v := range xd {
			pos := v > 0
			if pos {
				od[i] = v
			} else {
				od[i] = 0
			}
			mask[i] = pos
		}
		return r.out
	}
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.gout = r.ws.Ensure(r.gout, grad.Shape()...)
	gd := grad.Data
	od := r.gout.Data[:len(gd)]
	mask := r.mask[:len(gd)]
	for i, v := range gd {
		if mask[i] {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	return r.gout
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

func (r *ReLU) setWorkspace(ws *Workspace) { r.ws = ws }

func (r *ReLU) releaseScratch() {
	r.ws.Release(r.out)
	r.ws.Release(r.gout)
	r.out, r.gout = nil, nil
}

// Dropout zeroes a fraction Rate of activations during training and scales
// the survivors by 1/(1-Rate) (inverted dropout), so inference needs no
// rescaling. The paper's CNNs use 0.25 after pooling and 0.5 before the
// final dense layer. The rescale mask is cached across batches; only its
// contents are redrawn.
type Dropout struct {
	Rate float64
	rng  *rand.Rand
	mask []float64

	ws        *Workspace
	out, gout *tensor.Tensor
}

// NewDropout returns a dropout layer driven by rng; rate must be in [0, 1).
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.Rate == 0 {
		return x
	}
	d.out = d.ws.Ensure(d.out, x.Shape()...)
	out := d.out
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	keep := 1 - d.Rate
	scale := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			out.Data[i] = v * scale
		} else {
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.Rate == 0 {
		return grad
	}
	d.gout = d.ws.Ensure(d.gout, grad.Shape()...)
	for i, v := range grad.Data {
		d.gout.Data[i] = v * d.mask[i]
	}
	return d.gout
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

func (d *Dropout) setWorkspace(ws *Workspace) { d.ws = ws }

func (d *Dropout) releaseScratch() {
	d.ws.Release(d.out)
	d.ws.Release(d.gout)
	d.out, d.gout = nil, nil
}

// Flatten reshapes (N, C, H, W) activations to (N, C·H·W) so convolutional
// features can feed dense layers. Both directions are views sharing the
// input's storage; the view headers are cached so steady-state batches
// allocate nothing.
type Flatten struct {
	inShape  []int
	fwdShape []int
	fwd, bwd *tensor.Tensor
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	n := x.Dim(0)
	f.fwdShape = append(f.fwdShape[:0], n, x.Size()/n)
	f.fwd = tensor.AliasView(f.fwd, x, f.fwdShape)
	return f.fwd
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	f.bwd = tensor.AliasView(f.bwd, grad, f.inShape)
	return f.bwd
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
