package nn

import "math/rand"

// NewMLP builds a multilayer perceptron: in → hidden... (ReLU) → classes,
// with optional dropout before the final layer. This is the model the
// experiment harness trains on the synthetic feature datasets; its FedAvg
// dynamics (convergence per round, sensitivity to class-skewed clients) are
// what the paper's figures measure.
func NewMLP(rng *rand.Rand, in int, hidden []int, classes int, dropout float64) *Model {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(rng, prev, h), NewReLU())
		prev = h
	}
	if dropout > 0 {
		layers = append(layers, NewDropout(rng, dropout))
	}
	layers = append(layers, NewDense(rng, prev, classes))
	return NewModel(layers...)
}

// NewLogistic builds a multinomial logistic-regression model (single dense
// layer); useful as the cheapest client model for very large populations.
func NewLogistic(rng *rand.Rand, in, classes int) *Model {
	return NewModel(NewDense(rng, in, classes))
}

// NewPaperMNISTCNN builds the CNN the paper trains on MNIST and
// Fashion-MNIST: 3×3 conv ×32 (ReLU), 3×3 conv ×64 (ReLU), 2×2 max-pool,
// dropout 0.25, dense 128 (ReLU), dropout 0.5, dense `classes`.
// Input shape is (N, channels, h, w).
func NewPaperMNISTCNN(rng *rand.Rand, h, w, channels, classes int) *Model {
	oh := h - 2 - 2 // two valid 3×3 convs
	ow := w - 2 - 2
	ph, pw := oh/2, ow/2
	return NewModel(
		NewConv2D(rng, channels, 32, 3, 3, 1, 0),
		NewReLU(),
		NewConv2D(rng, 32, 64, 3, 3, 1, 0),
		NewReLU(),
		NewMaxPool(2, 2),
		NewDropout(rng, 0.25),
		NewFlatten(),
		NewDense(rng, 64*ph*pw, 128),
		NewReLU(),
		NewDropout(rng, 0.5),
		NewDense(rng, 128, classes),
	)
}

// NewPaperCIFARCNN builds the paper's CIFAR-10 model: a four-layer
// convolutional network ending in two fully connected layers before softmax,
// trained with dropout 0.25. Input shape is (N, channels, h, w).
func NewPaperCIFARCNN(rng *rand.Rand, h, w, channels, classes int) *Model {
	// conv1..conv2 (same padding) → pool → conv3..conv4 → pool
	h1, w1 := h/2, w/2
	h2, w2 := h1/2, w1/2
	return NewModel(
		NewConv2D(rng, channels, 32, 3, 3, 1, 1),
		NewReLU(),
		NewConv2D(rng, 32, 32, 3, 3, 1, 1),
		NewReLU(),
		NewMaxPool(2, 2),
		NewDropout(rng, 0.25),
		NewConv2D(rng, 32, 64, 3, 3, 1, 1),
		NewReLU(),
		NewConv2D(rng, 64, 64, 3, 3, 1, 1),
		NewReLU(),
		NewMaxPool(2, 2),
		NewDropout(rng, 0.25),
		NewFlatten(),
		NewDense(rng, 64*h2*w2, 128),
		NewReLU(),
		NewDense(rng, 128, classes),
	)
}
