package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Model is a sequential stack of layers trained with softmax cross-entropy.
// It is the unit the FL system replicates: the aggregator owns one global
// Model and clients own structurally identical replicas whose weights are
// overwritten at the start of every round.
//
// Layers must not be modified after the model's first use: the model caches
// its parameter and gradient tensor lists so the per-batch optimizer step
// allocates nothing. A Model is not safe for concurrent use.
type Model struct {
	Layers []Layer

	ws       *Workspace
	lossGrad *tensor.Tensor   // scratch for the fused softmax-xent gradient
	params   []*tensor.Tensor // cached Params() (stable tensor identities)
	grads    []*tensor.Tensor // cached Grads()
	evalArg  []int            // scratch for Evaluate's per-batch argmax
	evalShp  []int            // scratch for Evaluate's batch shapes
}

// NewModel returns a sequential model over the given layers.
func NewModel(layers ...Layer) *Model { return &Model{Layers: layers} }

// Forward runs the full stack and returns the logits. The returned tensor
// is scratch owned by the final layer, overwritten by the next pass.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// SoftmaxCrossEntropy computes mean cross-entropy loss of logits (N, K)
// against integer labels, plus dLoss/dLogits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is the fused, allocation-free core of
// SoftmaxCrossEntropy: it computes the mean loss and writes dLoss/dLogits
// into grad in a single pass over each row (softmax, loss, label
// subtraction, and 1/N scaling while the row is cache-hot). grad must have
// logits' shape. Results are bit-identical to the historical multi-pass
// formulation: per element the operation order is exp → ·1/Σ → (label −1)
// → ·1/N.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(labels), n))
	}
	if grad.Dim(0) != n || grad.Dim(1) != k {
		panic(fmt.Sprintf("nn: softmax grad shape %v for logits %v", grad.Shape(), logits.Shape()))
	}
	invN := 1 / float64(n)
	loss := 0.0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		grow := grad.Data[i*k : (i+1)*k]
		// log-sum-exp for numerical stability
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			grow[j] = e
			sum += e
		}
		inv := 1 / sum
		lbl := labels[i]
		if lbl < 0 || lbl >= k {
			panic(fmt.Sprintf("nn: label %d outside [0,%d)", lbl, k))
		}
		for j := range grow {
			grow[j] *= inv
		}
		loss += -math.Log(math.Max(grow[lbl], 1e-15))
		grow[lbl] -= 1
		for j := range grow {
			grow[j] *= invN
		}
	}
	return loss / float64(n)
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := logits.Clone()
	for i := 0; i < n; i++ {
		row := out.Data[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			row[j] = math.Exp(v - maxv)
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

// paramGradOnly is implemented by layers that can compute their parameter
// gradients without also producing the input gradient. The training loop
// uses it for the first layer of the stack, whose input gradient nobody
// consumes — for Dense that skips a full matmul per batch, for Conv2D a
// matmul plus the col2im scatter.
type paramGradOnly interface {
	backwardParams(grad *tensor.Tensor)
}

// TrainBatch runs one forward/backward pass on a mini-batch and applies one
// optimizer step. It returns the batch's mean loss. At steady state (fixed
// batch shape, warmed-up caches) it performs no heap allocation, and the
// first layer's (unused) input gradient is never computed.
func (m *Model) TrainBatch(x *tensor.Tensor, labels []int, opt Optimizer) float64 {
	logits := m.Forward(x, true)
	m.lossGrad = m.ws.Ensure(m.lossGrad, logits.Dim(0), logits.Dim(1))
	loss := SoftmaxCrossEntropyInto(m.lossGrad, logits, labels)
	grad := m.lossGrad
	for i := len(m.Layers) - 1; i >= 1; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	if len(m.Layers) > 0 {
		if first, ok := m.Layers[0].(paramGradOnly); ok {
			first.backwardParams(grad)
		} else {
			m.Layers[0].Backward(grad)
		}
	}
	opt.Step(m.cachedParams(), m.cachedGrads())
	return loss
}

// Predict returns the argmax class for each row of x.
func (m *Model) Predict(x *tensor.Tensor) []int {
	return m.Forward(x, false).ArgMaxRows()
}

// Evaluate returns accuracy and mean loss of the model on (x, labels),
// processing in batches of batchSize to bound memory (batchSize ≤ 0 means
// one batch).
func (m *Model) Evaluate(x *tensor.Tensor, labels []int, batchSize int) (acc, loss float64) {
	n := x.Dim(0)
	if n == 0 {
		return 0, 0
	}
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	correct := 0
	totalLoss := 0.0
	rest := x.Size() / n
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		m.evalShp = append(m.evalShp[:0], x.Shape()...)
		m.evalShp[0] = hi - lo
		batch := tensor.FromSlice(x.Data[lo*rest:hi*rest], m.evalShp...)
		logits := m.Forward(batch, false)
		m.lossGrad = m.ws.Ensure(m.lossGrad, logits.Dim(0), logits.Dim(1))
		l := SoftmaxCrossEntropyInto(m.lossGrad, logits, labels[lo:hi])
		totalLoss += l * float64(hi-lo)
		if cap(m.evalArg) < hi-lo {
			m.evalArg = make([]int, hi-lo)
		}
		m.evalArg = m.evalArg[:hi-lo]
		logits.ArgMaxRowsInto(m.evalArg)
		for i, p := range m.evalArg {
			if p == labels[lo+i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n), totalLoss / float64(n)
}

// Params returns all trainable tensors across layers in a stable order.
func (m *Model) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns all gradient tensors in the same order as Params.
func (m *Model) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range m.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// cachedParams returns the memoized parameter list; tensor identities are
// stable because backward passes write gradients in place.
func (m *Model) cachedParams() []*tensor.Tensor {
	if m.params == nil {
		m.params = m.Params()
	}
	return m.params
}

func (m *Model) cachedGrads() []*tensor.Tensor {
	if m.grads == nil {
		m.grads = m.Grads()
	}
	return m.grads
}

// NumParams returns the total number of trainable scalars.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.cachedParams() {
		n += p.Size()
	}
	return n
}

// WeightsVector returns a flat copy of all trainable weights. This is the
// representation exchanged between clients and the aggregator.
func (m *Model) WeightsVector() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, p := range m.cachedParams() {
		out = append(out, p.Data...)
	}
	return out
}

// SetWeightsVector overwrites all trainable weights from a flat vector
// produced by WeightsVector on a structurally identical model.
func (m *Model) SetWeightsVector(w []float64) {
	off := 0
	for _, p := range m.cachedParams() {
		n := p.Size()
		if off+n > len(w) {
			panic(fmt.Sprintf("nn: weight vector too short: have %d, need > %d", len(w), off+n))
		}
		copy(p.Data, w[off:off+n])
		off += n
	}
	if off != len(w) {
		panic(fmt.Sprintf("nn: weight vector length %d, model needs %d", len(w), off))
	}
}
