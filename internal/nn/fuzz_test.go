package nn

import (
	"math"
	"testing"
)

// FuzzDecodeWeights exercises the weight codec against arbitrary byte
// strings: it must never panic, and anything it accepts must re-encode to
// an equivalent buffer.
func FuzzDecodeWeights(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeWeights(nil))
	f.Add(EncodeWeights([]float64{1, -2, math.Pi}))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := DecodeWeights(data)
		if err != nil {
			return
		}
		re := EncodeWeights(w)
		if len(re) != len(data) {
			t.Fatalf("re-encode length %d != %d", len(re), len(data))
		}
		back, err := DecodeWeights(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		for i := range w {
			if math.Float64bits(back[i]) != math.Float64bits(w[i]) {
				t.Fatalf("round trip diverged at %d", i)
			}
		}
	})
}
