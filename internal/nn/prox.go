package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Proximal wraps an optimizer with FedProx's proximal term (Li et al.,
// "Federated Optimization in Heterogeneous Networks" — reference [23] of
// the TiFL paper): the local objective gains μ/2·‖w − w_global‖², i.e.
// every gradient gets μ·(w − w_global) added before the inner step. The
// reference weights are the round's global model, so local updates are
// pulled back toward it, which is FedProx's defence against client drift
// under heterogeneity.
type Proximal struct {
	Inner Optimizer
	Mu    float64
	ref   []float64
}

// NewProximal wraps inner with a proximal term of strength mu anchored at
// the flat reference weight vector ref (a copy is taken).
func NewProximal(inner Optimizer, mu float64, ref []float64) *Proximal {
	if mu < 0 {
		panic(fmt.Sprintf("nn: negative proximal mu %v", mu))
	}
	return &Proximal{Inner: inner, Mu: mu, ref: append([]float64(nil), ref...)}
}

// Step implements Optimizer: grads += μ(w − ref), then the inner step.
func (p *Proximal) Step(params, grads []*tensor.Tensor) {
	off := 0
	for i, pt := range params {
		g := grads[i].Data
		for j, w := range pt.Data {
			g[j] += p.Mu * (w - p.ref[off+j])
		}
		off += pt.Size()
	}
	p.Inner.Step(params, grads)
}

// AttachStatePool implements StatePooled by delegating to the wrapped
// optimizer when it supports pooling.
func (p *Proximal) AttachStatePool(pool *tensor.Pool) {
	if sp, ok := p.Inner.(StatePooled); ok {
		sp.AttachStatePool(pool)
	}
}

// ReleaseState implements StatePooled.
func (p *Proximal) ReleaseState() {
	if sp, ok := p.Inner.(StatePooled); ok {
		sp.ReleaseState()
	}
}
