package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := tensor.FromSlice([]float64{5}, 1)
	g := tensor.New(1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		g.Data[0] = 2 * p.Data[0]
		opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	}
	if math.Abs(p.Data[0]) > 0.05 {
		t.Fatalf("Adam did not converge: %v", p.Data[0])
	}
}

func TestAdamBiasCorrection(t *testing.T) {
	// First step with gradient g moves by ≈ lr·sign(g) thanks to bias
	// correction (not lr·(1−β1)·g which would be tiny).
	p := tensor.FromSlice([]float64{0}, 1)
	g := tensor.FromSlice([]float64{0.001}, 1)
	opt := NewAdam(0.1)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if math.Abs(p.Data[0]+0.1) > 0.01 {
		t.Fatalf("first Adam step = %v, want ≈ -0.1", p.Data[0])
	}
}

func TestSigmoidForwardBackward(t *testing.T) {
	s := NewSigmoid()
	x := tensor.FromSlice([]float64{0}, 1, 1)
	y := s.Forward(x, true)
	if math.Abs(y.Data[0]-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", y.Data[0])
	}
	g := s.Backward(tensor.FromSlice([]float64{1}, 1, 1))
	if math.Abs(g.Data[0]-0.25) > 1e-12 {
		t.Fatalf("sigmoid'(0) = %v, want 0.25", g.Data[0])
	}
}

func TestTanhForwardBackward(t *testing.T) {
	l := NewTanh()
	x := tensor.FromSlice([]float64{0, 1}, 1, 2)
	y := l.Forward(x, true)
	if y.Data[0] != 0 || math.Abs(y.Data[1]-math.Tanh(1)) > 1e-12 {
		t.Fatalf("tanh = %v", y.Data)
	}
	g := l.Backward(tensor.FromSlice([]float64{1, 1}, 1, 2))
	if math.Abs(g.Data[0]-1) > 1e-12 {
		t.Fatalf("tanh'(0) = %v, want 1", g.Data[0])
	}
}

func TestSigmoidTanhGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := NewModel(
		NewDense(rng, 4, 6),
		NewTanh(),
		NewDense(rng, 6, 5),
		NewSigmoid(),
		NewDense(rng, 5, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 4, 4)
	numericalGradCheck(t, m, x, []int{0, 1, 2, 1}, 1e-4)
}

func TestProximalGradientDirection(t *testing.T) {
	// With zero data gradient, the proximal step moves weights toward ref.
	p := tensor.FromSlice([]float64{2}, 1)
	g := tensor.New(1)
	opt := NewProximal(NewSGD(0.1, 0), 1.0, []float64{0})
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	// grad becomes mu*(2-0)=2; SGD: 2 - 0.1*2 = 1.8
	if math.Abs(p.Data[0]-1.8) > 1e-12 {
		t.Fatalf("proximal step = %v, want 1.8", p.Data[0])
	}
}

func TestProximalNegativeMuPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative mu did not panic")
		}
	}()
	NewProximal(NewSGD(0.1, 0), -1, []float64{0})
}

func TestProximalZeroMuIsInner(t *testing.T) {
	p1 := tensor.FromSlice([]float64{1}, 1)
	p2 := tensor.FromSlice([]float64{1}, 1)
	g := tensor.FromSlice([]float64{3}, 1)
	NewSGD(0.1, 0).Step([]*tensor.Tensor{p1}, []*tensor.Tensor{g.Clone()})
	NewProximal(NewSGD(0.1, 0), 0, []float64{99}).Step([]*tensor.Tensor{p2}, []*tensor.Tensor{g.Clone()})
	if p1.Data[0] != p2.Data[0] {
		t.Fatalf("mu=0 proximal %v differs from inner %v", p2.Data[0], p1.Data[0])
	}
}
