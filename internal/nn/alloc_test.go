package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// Allocation-regression tests for the steady-state training hot path: after
// a warm-up batch has sized every cached buffer, repeated batches of the
// same shape must not allocate. Problem sizes stay under the matmul
// parallelism threshold so goroutine spawning doesn't count against the
// layers.

func denseBatch(rng *rand.Rand, n, in int) *tensor.Tensor {
	return tensor.RandNormal(rng, 0, 1, n, in)
}

func TestDenseSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 16, 8)
	d.setWorkspace(NewWorkspace())
	x := denseBatch(rng, 4, 16)
	grad := tensor.RandNormal(rng, 0, 1, 4, 8)
	d.Forward(x, true)
	d.Backward(grad)
	avg := testing.AllocsPerRun(50, func() {
		d.Forward(x, true)
		d.Backward(grad)
	})
	if avg != 0 {
		t.Fatalf("Dense forward+backward allocates %v per batch at steady state, want 0", avg)
	}
}

func TestConv2DSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(rng, 2, 4, 3, 3, 1, 1)
	c.setWorkspace(NewWorkspace())
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 8, 8)
	grad := tensor.RandNormal(rng, 0, 1, 2, 4, 8, 8)
	c.Forward(x, true)
	c.Backward(grad)
	avg := testing.AllocsPerRun(50, func() {
		c.Forward(x, true)
		c.Backward(grad)
	})
	if avg != 0 {
		t.Fatalf("Conv2D forward+backward allocates %v per batch at steady state, want 0", avg)
	}
}

func TestModelTrainBatchSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(
		NewConv2D(rng, 1, 2, 3, 3, 1, 1),
		NewReLU(),
		NewMaxPool(2, 2),
		NewDropout(rng, 0.25),
		NewFlatten(),
		NewDense(rng, 2*4*4, 8),
		NewReLU(),
		NewDense(rng, 8, 3),
	)
	m.SetWorkspace(NewWorkspace())
	x := tensor.RandNormal(rng, 0, 1, 4, 1, 8, 8)
	labels := []int{0, 1, 2, 1}
	opt := NewSGD(0.01, 0.9)
	m.TrainBatch(x, labels, opt) // warm up caches and optimizer state
	avg := testing.AllocsPerRun(50, func() {
		m.TrainBatch(x, labels, opt)
	})
	if avg != 0 {
		t.Fatalf("Model.TrainBatch allocates %v per batch at steady state, want 0", avg)
	}
}

func TestEvaluateSteadyStateAllocsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 12, []int{8}, 4, 0)
	m.SetWorkspace(NewWorkspace())
	x := tensor.RandNormal(rng, 0, 1, 32, 12)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	m.Evaluate(x, labels, 8)
	avg := testing.AllocsPerRun(20, func() {
		m.Evaluate(x, labels, 8)
	})
	// Eval batches keep a small per-batch header allocation (FromSlice
	// views); the per-element buffers must all be cached.
	if avg > 16 {
		t.Fatalf("Model.Evaluate allocates %v per eval, want ≤ 16", avg)
	}
}

// The workspace must be shareable across successive model replicas of the
// same architecture without growing: release returns every buffer.
func TestWorkspaceHandoffBetweenModels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ws := NewWorkspace()
	x := tensor.RandNormal(rng, 0, 1, 4, 6)
	labels := []int{0, 1, 0, 1}
	for i := 0; i < 3; i++ {
		m := NewMLP(rand.New(rand.NewSource(7)), 6, []int{5}, 2, 0)
		m.SetWorkspace(ws)
		m.TrainBatch(x, labels, NewSGD(0.1, 0))
		m.ReleaseScratch()
	}
}

// Concurrent per-goroutine workspaces share nothing; one shared tensor pool
// under them must be race-free. Run with -race.
func TestConcurrentWorkspacesRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			ws := NewWorkspace()
			m := NewMLP(rng, 10, []int{6}, 3, 0.1)
			m.SetWorkspace(ws)
			x := tensor.RandNormal(rng, 0, 1, 5, 10)
			labels := []int{0, 1, 2, 0, 1}
			opt := NewSGD(0.05, 0.9)
			for it := 0; it < 50; it++ {
				m.TrainBatch(x, labels, opt)
			}
			m.ReleaseScratch()
		}(g)
	}
	wg.Wait()
}

// Replica.Acquire must reproduce a fresh factory build bit-exactly: same
// weights after SetWeightsVector, same rng stream for dropout and shuffles.
func TestReplicaMatchesFreshBuild(t *testing.T) {
	factory := func(rng *rand.Rand) *Model {
		return NewMLP(rng, 6, []int{5}, 3, 0.3)
	}
	rep := NewReplica(factory)
	x := tensor.RandNormal(rand.New(rand.NewSource(99)), 0, 1, 4, 6)
	labels := []int{0, 1, 2, 0}
	global := make([]float64, NewMLP(rand.New(rand.NewSource(0)), 6, []int{5}, 3, 0.3).NumParams())
	for i := range global {
		global[i] = math.Sin(float64(i))
	}
	for trial, seed := range []int64{42, 7, 42, -3, 7} {
		// Reference: the historical fresh-build path.
		refRng := rand.New(rand.NewSource(seed))
		ref := factory(refRng)
		ref.SetWeightsVector(global)
		refLoss := ref.TrainBatch(x, labels, NewSGD(0.1, 0))
		refDraw := refRng.Float64()

		m, rng := rep.Acquire(seed)
		m.SetWeightsVector(global)
		loss := m.TrainBatch(x, labels, NewSGD(0.1, 0))
		draw := rng.Float64()

		if math.Float64bits(loss) != math.Float64bits(refLoss) {
			t.Fatalf("trial %d (seed %d): replica loss %v, fresh build %v", trial, seed, loss, refLoss)
		}
		if math.Float64bits(draw) != math.Float64bits(refDraw) {
			t.Fatalf("trial %d (seed %d): replica rng draw %v, fresh build %v", trial, seed, draw, refDraw)
		}
		refW, w := ref.WeightsVector(), m.WeightsVector()
		for i := range refW {
			if math.Float64bits(refW[i]) != math.Float64bits(w[i]) {
				t.Fatalf("trial %d (seed %d): weight %d = %v, fresh build %v", trial, seed, i, w[i], refW[i])
			}
		}
	}
}

func TestReplicaNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil factory must panic")
		}
	}()
	NewReplica(nil)
}

// Optimizer state drawn from a pool must not change results and must be
// returnable.
func TestPooledOptimizerStateBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := tensor.RandNormal(rng, 0, 1, 4, 4)
	g := tensor.RandNormal(rng, 0, 1, 4, 4)
	ref := p.Clone()
	refG := g.Clone()

	plain := NewRMSprop(0.01, 0.995)
	plain.Step([]*tensor.Tensor{ref}, []*tensor.Tensor{refG})
	plain.Step([]*tensor.Tensor{ref}, []*tensor.Tensor{refG})

	var pool tensor.Pool
	pooled := NewRMSprop(0.01, 0.995)
	pooled.AttachStatePool(&pool)
	pooled.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	pooled.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	pooled.ReleaseState()

	for i := range ref.Data {
		if math.Float64bits(ref.Data[i]) != math.Float64bits(p.Data[i]) {
			t.Fatalf("pooled RMSprop diverged at %d: %v vs %v", i, p.Data[i], ref.Data[i])
		}
	}
}
