package nn

import (
	"math"

	"repro/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba): per-coordinate first and second
// moment estimates with bias correction. Not used by the paper's
// experiments (which use RMSprop and SGD) but provided for downstream
// users of the library.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	m, v                  optState
	t                     int
}

// NewAdam returns Adam with the standard defaults β1=0.9, β2=0.999,
// ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// AttachStatePool implements StatePooled.
func (a *Adam) AttachStatePool(p *tensor.Pool) {
	a.m.pool = p
	a.v.pool = p
}

// ReleaseState implements StatePooled.
func (a *Adam) ReleaseState() {
	a.m.release()
	a.v.release()
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	a.m.init(params)
	a.v.init(params)
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v, g := a.m.bufs[i], a.v.bufs[i], grads[i].Data
		for j := range m {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			p.Data[j] -= a.LR * (m[j] / c1) / (math.Sqrt(v[j]/c2) + a.Eps)
		}
	}
}

// Sigmoid applies 1/(1+e^-x) element-wise.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Apply(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	if train {
		s.out = out
	}
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad.Clone()
	for i, o := range s.out.Data {
		g.Data[i] *= o * (1 - o)
	}
	return g
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// Tanh applies tanh element-wise.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Apply(math.Tanh)
	if train {
		t.out = out
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad.Clone()
	for i, o := range t.out.Data {
		g.Data[i] *= 1 - o*o
	}
	return g
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }
