package tiering

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/flcore"
)

// profile builds an n-client latency map with three latency groups.
func profile(n int) map[int]float64 {
	lat := make(map[int]float64, n)
	for i := 0; i < n; i++ {
		lat[i] = []float64{1, 5, 25}[i%3] + float64(i)*1e-3
	}
	return lat
}

func newTestManager(t *testing.T, cfg Config, lat map[int]float64) *Manager {
	t.Helper()
	m, err := NewManager(cfg, lat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerInitialTiersPartition(t *testing.T) {
	lat := profile(12)
	m := newTestManager(t, Config{NumTiers: 3, ClientsPerRound: 2, Seed: 1}, lat)
	tiers := m.Tiers()
	if len(tiers) != 3 {
		t.Fatalf("built %d tiers", len(tiers))
	}
	// Membership must match core.BuildTiers exactly, member order
	// included — the static engines' TierCohort draw is a permutation
	// over member positions, so order is part of the contract.
	built := core.BuildTiers(lat, 3, core.Quantile)
	seen := map[int]bool{}
	for ti, members := range tiers {
		if len(members) == 0 {
			t.Fatalf("tier %d empty", ti)
		}
		if !reflect.DeepEqual(members, built[ti].Members) {
			t.Fatalf("tier %d members %v differ from BuildTiers %v", ti, members, built[ti].Members)
		}
		for _, c := range members {
			if seen[c] {
				t.Fatalf("client %d in two tiers", c)
			}
			seen[c] = true
			if got, ok := m.TierOf(c); !ok || got != ti {
				t.Fatalf("TierOf(%d) = %d,%v want %d", c, got, ok, ti)
			}
		}
	}
	if len(seen) != 12 {
		t.Fatalf("tiers cover %d of 12 clients", len(seen))
	}
	// The fast group (latency ~1) must land in tier 0.
	if got, _ := m.TierOf(0); got != 0 {
		t.Fatalf("fast client 0 in tier %d", got)
	}
	if got, _ := m.TierOf(2); got != 2 {
		t.Fatalf("slow client 2 in tier %d", got)
	}
}

func TestManagerValidation(t *testing.T) {
	lat := profile(6)
	bad := []Config{
		{NumTiers: 0, ClientsPerRound: 1},
		{NumTiers: 2, ClientsPerRound: 0},
		{NumTiers: 2, ClientsPerRound: 1, EWMABeta: 1.5},
		{NumTiers: 2, ClientsPerRound: 1, EWMABeta: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewManager(cfg, lat); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewManager(Config{NumTiers: 2, ClientsPerRound: 1}, nil); err == nil {
		t.Error("empty profile accepted")
	}
	// Degenerate profile: 2 clients, 5 requested tiers collapses to 2.
	m, err := NewManager(Config{NumTiers: 5, ClientsPerRound: 1}, map[int]float64{0: 1, 1: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTiers() != 2 {
		t.Fatalf("degenerate profile kept %d tiers, want 2", m.NumTiers())
	}
}

func TestCohortMatchesStaticDraw(t *testing.T) {
	// With adaptive off, the Manager's cohorts are exactly the static
	// TierCohort draws over its membership — the property that keeps a
	// Manager run comparable with the frozen-tier engines.
	lat := profile(12)
	m := newTestManager(t, Config{NumTiers: 3, ClientsPerRound: 2, Seed: 42}, lat)
	tiers := m.Tiers()
	for tier := 0; tier < 3; tier++ {
		for r := 0; r < 5; r++ {
			got := m.Cohort(tier, r, 2)
			want := flcore.TierCohort(42, r, tier, tiers[tier], 2)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("tier %d round %d: cohort %v, static draw %v", tier, r, got, want)
			}
		}
	}
	if m.Cohort(7, 0, 2) != nil {
		t.Fatal("out-of-range tier returned a cohort")
	}
}

func TestObserveEWMAAndGuards(t *testing.T) {
	m := newTestManager(t, Config{NumTiers: 2, ClientsPerRound: 1, EWMABeta: 0.5}, map[int]float64{0: 2, 1: 10})
	m.Observe(0, 6)
	if v, _ := m.EWMA(0); v != 4 {
		t.Fatalf("EWMA after one observation = %v, want 4", v)
	}
	// Garbage observations are ignored.
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		m.Observe(0, bad)
	}
	if v, _ := m.EWMA(0); v != 4 {
		t.Fatalf("EWMA poisoned by garbage observation: %v", v)
	}
	// Late joiners are adopted at their first observation.
	m.Observe(9, 3)
	if v, ok := m.EWMA(9); !ok || v != 3 {
		t.Fatalf("late joiner EWMA = %v,%v", v, ok)
	}
}

// drift drives client latencies so the fast client 0 becomes the slowest;
// a rebuild at the retier point must migrate it.
func TestMaybeRetierMigratesDriftedClient(t *testing.T) {
	lat := map[int]float64{0: 1, 1: 1.1, 2: 10, 3: 11}
	m := newTestManager(t, Config{NumTiers: 2, RetierEvery: 4, ClientsPerRound: 1, Seed: 7}, lat)
	// Client 0 drifts to 40 s; everyone else holds steady.
	for i := 0; i < 6; i++ {
		m.Observe(0, 40)
		m.Observe(1, 1.1)
		m.Observe(2, 10)
		m.Observe(3, 11)
	}
	// Non-multiples of RetierEvery never rebuild.
	if _, _, changed := m.MaybeRetier(3); changed {
		t.Fatal("rebuilt off-schedule")
	}
	tiers, moves, changed := m.MaybeRetier(4)
	if !changed {
		t.Fatal("rebuild point did not re-tier")
	}
	if len(moves) == 0 || m.Retiers() != 1 {
		t.Fatalf("moves %v, retiers %d", moves, m.Retiers())
	}
	if got, _ := m.TierOf(0); got != 1 {
		t.Fatalf("drifted client 0 in tier %d after rebuild", got)
	}
	for _, mv := range moves {
		if mv.Client == 0 && (mv.From != 0 || mv.To != 1) {
			t.Fatalf("client 0 move %+v", mv)
		}
	}
	for ti, members := range tiers {
		if len(members) == 0 {
			t.Fatalf("tier %d empty after rebuild", ti)
		}
	}
	// Same version again is a no-op (idempotent per commit).
	if _, _, changed := m.MaybeRetier(4); changed {
		t.Fatal("same version rebuilt twice")
	}
	log := m.Log()
	if len(log) != 1 || log[0].Version != 4 {
		t.Fatalf("log %+v", log)
	}
}

func TestHysteresisDampsOutlierRounds(t *testing.T) {
	lat := map[int]float64{0: 1, 1: 1.1, 2: 10, 3: 11}
	m := newTestManager(t, Config{NumTiers: 2, RetierEvery: 2, ClientsPerRound: 1, Hysteresis: 0.5, EWMABeta: 0.5}, lat)
	// One bad round nudges client 1's EWMA to 1.6 — within the 50%
	// hysteresis band relative to... 1.1*1.5 = 1.65, so frozen.
	m.Observe(1, 2.1)
	if _, _, changed := m.MaybeRetier(2); changed {
		t.Fatal("single outlier round re-tiered membership")
	}
	// Sustained drift pushes past the band and migrates.
	for i := 0; i < 8; i++ {
		m.Observe(1, 30)
	}
	if _, _, changed := m.MaybeRetier(4); !changed {
		t.Fatal("sustained drift did not re-tier")
	}
	if got, _ := m.TierOf(1); got != 1 {
		t.Fatalf("drifted client 1 in tier %d", got)
	}
}

func TestPinnedClientsNeverMigrate(t *testing.T) {
	lat := map[int]float64{0: 1, 1: 1.1, 2: 10, 3: 11}
	m := newTestManager(t, Config{NumTiers: 2, RetierEvery: 2, ClientsPerRound: 1}, lat)
	m.Pin(0)
	for i := 0; i < 8; i++ {
		m.Observe(0, 50)
	}
	tiers, moves, changed := m.MaybeRetier(2)
	if changed {
		// A rebuild may still move others; client 0 must not be among them.
		for _, mv := range moves {
			if mv.Client == 0 {
				t.Fatalf("pinned client migrated: %+v", mv)
			}
		}
		_ = tiers
	}
	if got, _ := m.TierOf(0); got != 0 {
		t.Fatalf("pinned client left tier 0: now %d", got)
	}
}

func TestAdaptiveCohortSizingAndCredits(t *testing.T) {
	lat := profile(12)
	m := newTestManager(t, Config{
		NumTiers: 3, ClientsPerRound: 2, Seed: 3,
		Adaptive: true, Credits: 2, Temperature: 2,
	}, lat)
	// Tier 2 struggles (low accuracy) → boosted cohorts; tier 0 is nearly
	// perfect → shrunk cohorts.
	m.ObserveAccuracy([]float64{0.99, 0.6, 0.1})
	p := m.Probabilities()
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("probabilities not accuracy-ordered: %v", p)
	}
	if got := len(m.Cohort(2, 0, 2)); got <= 2 {
		t.Fatalf("struggling tier cohort size %d not boosted", got)
	}
	if got := len(m.Cohort(0, 0, 2)); got != 1 {
		t.Fatalf("near-perfect tier cohort size %d, want shrunk to 1", got)
	}
	// Credits bound boosted rounds: after the budget, tier 2 falls back to
	// the uniform size.
	m.Cohort(2, 1, 2) // second (and last) boosted round
	if c := m.CreditsRemaining()[2]; c != 0 {
		t.Fatalf("credits remaining %d, want 0", c)
	}
	if got := len(m.Cohort(2, 2, 2)); got != 2 {
		t.Fatalf("credit-exhausted tier cohort size %d, want uniform 2", got)
	}
	// Boosted size never exceeds 2×want even at extreme probabilities.
	m2 := newTestManager(t, Config{NumTiers: 3, ClientsPerRound: 2, Adaptive: true}, profile(30))
	m2.ObserveAccuracy([]float64{1, 1, 0})
	if got := len(m2.Cohort(2, 0, 3)); got > 6 {
		t.Fatalf("boost cap violated: %d > 6", got)
	}
}

func TestAdaptiveFallbackWithoutAccuracies(t *testing.T) {
	// Socket runs never call ObserveAccuracy: probabilities fall back to
	// inverse commit shares, boosting tiers that have drawn fewer cohorts.
	m := newTestManager(t, Config{NumTiers: 3, ClientsPerRound: 2, Adaptive: true}, profile(12))
	for r := 0; r < 10; r++ {
		m.Cohort(0, r, 2) // fast tier draws often
	}
	p := m.Probabilities()
	if !(p[2] > p[0] && p[1] > p[0]) {
		t.Fatalf("rarely-drawn tiers not boosted: %v", p)
	}
}

func TestManagerDeterministicReplay(t *testing.T) {
	// Two Managers fed the identical call sequence must produce identical
	// cohorts, membership, and logs — the property the byte-identical
	// sim-vs-net parity rests on.
	run := func() ([][]int, []Reassignment, [][]int) {
		m, err := NewManager(Config{NumTiers: 3, RetierEvery: 5, ClientsPerRound: 2, Seed: 11}, profile(12))
		if err != nil {
			t.Fatal(err)
		}
		var cohorts [][]int
		rng := rand.New(rand.NewSource(99))
		for v := 1; v <= 30; v++ {
			tier := v % 3
			c := m.Cohort(tier, v/3, 2)
			cohorts = append(cohorts, c)
			for _, ci := range c {
				m.Observe(ci, 1+float64(ci%3)*10+rng.Float64())
			}
			m.MaybeRetier(v)
		}
		return cohorts, m.Log(), m.Tiers()
	}
	c1, l1, t1 := run()
	c2, l2, t2 := run()
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(l1, l2) || !reflect.DeepEqual(t1, t2) {
		t.Fatal("identical call sequences diverged")
	}
}

func TestManagerConcurrentUse(t *testing.T) {
	// The socket runtime calls Cohort from per-tier goroutines while the
	// committer feeds Observe/MaybeRetier; run under -race.
	m := newTestManager(t, Config{NumTiers: 3, RetierEvery: 3, ClientsPerRound: 2, Adaptive: true, Credits: 5}, profile(30))
	var wg sync.WaitGroup
	for tier := 0; tier < 3; tier++ {
		wg.Add(1)
		go func(tier int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				for _, c := range m.Cohort(tier, r, 2) {
					m.Observe(c, float64(1+tier*10))
				}
			}
		}(tier)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; v <= 50; v++ {
			m.MaybeRetier(v)
			m.ObserveAccuracy([]float64{0.9, 0.5, 0.2})
			m.Tiers()
			m.Probabilities()
		}
	}()
	wg.Wait()
}

// BenchmarkRetier measures a full rebuild point over a 1000-client
// population with drifting estimates — the hot path of live tiering.
func BenchmarkRetier(b *testing.B) {
	b.ReportAllocs()
	lat := make(map[int]float64, 1000)
	for i := 0; i < 1000; i++ {
		lat[i] = 1 + float64(i%7)*3
	}
	m, err := NewManager(Config{NumTiers: 5, RetierEvery: 1, ClientsPerRound: 10, Seed: 1}, lat)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < 1000; c += 13 {
			m.Observe(c, 1+rng.Float64()*30)
		}
		m.MaybeRetier(i + 1)
	}
}
