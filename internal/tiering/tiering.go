// Package tiering is the live tier-management subsystem: one Manager owns
// tier membership for a whole training run, replacing the logic that used
// to be scattered across core.DynamicSelector (sim-only, sync-only),
// flcore.TierCohort call sites (uniform sampling, no credits), and flnet's
// one-shot MsgTierAssign placement.
//
// TiFL's Section 4.2 profiling is a one-shot snapshot, but the paper
// sketches an online version in which profiling and tiering refresh
// periodically so drifting clients migrate to the right tier; the
// follow-up literature (FedAT, Dynamic Tiering, FedDCT) places most of the
// achievable speedup in exactly that migration. The Manager implements it
// for both tiered-async engines behind the flcore.TierManager contract:
//
//   - Engines feed every committed tier round's observed per-client
//     latencies into Observe, which folds them into per-client EWMA
//     estimates (weight EWMABeta on the new observation).
//   - Every RetierEvery global commits, MaybeRetier rebuilds the tiers
//     from the EWMA estimates via core.BuildTiers. Hysteresis damps
//     thrash: a client's tracked latency participates in the rebuild at
//     its last placement value until it has moved by more than the
//     Hysteresis fraction, so a single outlier round cannot shuffle
//     membership.
//   - Cohort draws each tier round's participants with the same
//     (seed, tier round, tier) keying as flcore.TierCohort, so a Manager
//     with re-tiering disabled reproduces the static engines exactly.
//     With Adaptive selection on, cohort sizes follow Algorithm 2:
//     accuracy-driven tier probabilities (core.AdaptiveProbs over the
//     accuracies supplied via ObserveAccuracy) scale each tier's
//     participation, under per-tier Credits budgets that bound how many
//     boosted rounds a tier may take.
//
// Every method is deterministic given the same call sequence, which is
// what lets the simulated engine and the socket runtime (under lockstep
// commit scheduling) keep byte-identical global models through a
// migration. The Manager is safe for concurrent use: the socket runtime
// calls Cohort from per-tier goroutines while the committer feeds
// Observe/MaybeRetier.
package tiering

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/flcore"
)

// Config parameterizes a Manager.
type Config struct {
	// NumTiers is m, the number of latency tiers to maintain. Degenerate
	// populations (fewer clients than tiers) collapse to fewer tiers at
	// construction; the collapsed count is then maintained for the run.
	NumTiers int
	// RetierEvery rebuilds tiers every k global commits; 0 disables
	// re-tiering (the Manager still tracks EWMAs and drives selection).
	RetierEvery int
	// EWMABeta is the weight of a new latency observation in the running
	// estimate: ewma ← (1−β)·ewma + β·observed. 0 defaults to 0.5
	// (matching the DynamicSelector this subsystem replaces).
	EWMABeta float64
	// Hysteresis is the relative EWMA move a client needs before its
	// tracked latency can affect a rebuild (0 defaults to 0.2; negative
	// disables hysteresis entirely).
	Hysteresis float64
	// EqualWidth selects the paper's equal-width histogram split for
	// builds and rebuilds instead of the default balanced Quantile split
	// (which always yields NumTiers non-empty tiers when clients ≥ tiers,
	// so rebuilds are never skipped for collapsing) — mirroring
	// tifl.Options.EqualWidthTiers.
	EqualWidth bool
	// ClientsPerRound is the base cohort size |C| used when Cohort is
	// called with want ≤ 0.
	ClientsPerRound int
	// Seed keys every cohort draw (shared with the engines' seed so sim
	// and socket runs draw identical cohorts).
	Seed int64
	// CommAware switches the EWMA signal from compute-side latency to
	// end-to-end round cost: when an engine reports a full observation
	// through ObserveRound (worker-measured seconds, aggregator-measured
	// end-to-end seconds, wire bytes), the end-to-end value — transfer
	// and queueing included — is what gets folded, so rebuilds rank
	// clients by what a round actually costs, not compute alone. Off by
	// default: the compute-only signal is what the lockstep parity suite
	// (and every pre-existing run) was calibrated against. Byte EWMAs are
	// tracked either way for observability (CommBytes).
	CommAware bool

	// Adaptive enables Algorithm-2 selection: tier probabilities from
	// accuracy feedback scale cohort sizes under per-tier credits.
	Adaptive bool
	// Credits is the per-tier boosted-round budget Credits_t; 0 or
	// negative means unlimited (credits never bind).
	Credits int
	// Temperature shapes the ChangeProbs rule (core.AdaptiveProbs);
	// 0 defaults to 2.
	Temperature float64
}

func (c Config) withDefaults() Config {
	if c.EWMABeta == 0 {
		c.EWMABeta = 0.5
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 0.2
	}
	if c.Temperature <= 0 {
		c.Temperature = 2
	}
	return c
}

func (c Config) strategy() core.TieringStrategy {
	if c.EqualWidth {
		return core.EqualWidth
	}
	return core.Quantile
}

// Move is one client migrating between tiers at a rebuild point.
type Move = flcore.TierMove

// Reassignment records one applied rebuild.
type Reassignment struct {
	// Version is the global commit count at which the rebuild happened.
	Version int
	// Moves lists the migrated clients in ascending client order.
	Moves []Move
}

// Manager owns tier membership, latency estimates, and tier selection for
// one training run. Construct with NewManager; the zero value is unusable.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	tiers     [][]int     // members per tier, ascending client ID
	tierOf    map[int]int // client → tier index
	ewma      map[int]float64
	commBytes map[int]float64 // EWMA of per-round wire bytes (observability)
	placed    map[int]float64 // hysteresis-frozen latency of last placement
	pinned    map[int]bool    // clients excluded from migration

	probs    []float64 // Algorithm-2 tier probabilities
	haveAccs bool      // accuracies observed at least once
	credits  []int     // remaining boosted-round budget per tier
	draws    []int     // Cohort calls per tier (commit-share fallback)

	retiers     int // rebuilds that moved at least one client
	rebuilds    int // rebuild points reached (including no-ops)
	skipped     int // rebuilds skipped on degenerate estimates
	lastVersion int // last version MaybeRetier acted on (idempotency)
	log         []Reassignment
}

// NewManager builds the Manager over an initial latency profile (client →
// seconds, e.g. core.Profile output or flnet.ProfileWorkers measurements).
func NewManager(cfg Config, latency map[int]float64) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.NumTiers <= 0 {
		return nil, fmt.Errorf("tiering: NumTiers = %d", cfg.NumTiers)
	}
	if cfg.ClientsPerRound <= 0 {
		return nil, fmt.Errorf("tiering: ClientsPerRound = %d", cfg.ClientsPerRound)
	}
	if cfg.EWMABeta <= 0 || cfg.EWMABeta > 1 {
		return nil, fmt.Errorf("tiering: EWMABeta = %v", cfg.EWMABeta)
	}
	if len(latency) == 0 {
		return nil, fmt.Errorf("tiering: empty latency profile")
	}
	built := core.BuildTiers(latency, cfg.NumTiers, cfg.strategy())
	if len(built) == 0 {
		return nil, fmt.Errorf("tiering: no tiers built from %d profiled clients", len(latency))
	}
	cfg.NumTiers = len(built) // degenerate profiles collapse; keep the count
	m := &Manager{
		cfg:       cfg,
		tierOf:    make(map[int]int, len(latency)),
		ewma:      make(map[int]float64, len(latency)),
		commBytes: make(map[int]float64),
		placed:    make(map[int]float64, len(latency)),
		pinned:    make(map[int]bool),
		probs:     make([]float64, len(built)),
		draws:     make([]int, len(built)),
	}
	m.tiers = canonical(built)
	for t, members := range m.tiers {
		for _, c := range members {
			m.tierOf[c] = t
		}
	}
	for c, l := range latency {
		m.ewma[c] = l
		m.placed[c] = l
	}
	m.credits = make([]int, len(built))
	for t := range m.probs {
		m.probs[t] = 1 / float64(len(built)) // equal initial probability
		if cfg.Credits > 0 {
			m.credits[t] = cfg.Credits
		} else {
			m.credits[t] = math.MaxInt
		}
	}
	return m, nil
}

// NewManagerWithTiers builds a Manager over explicit initial membership
// (fastest tier first) instead of a full latency profile — the
// population-scale construction path: profiling all N clients of a
// million-client population is exactly the O(N) sweep the scaled engine
// exists to avoid, so the caller supplies membership derived some other way
// (e.g. by id-keyed resource group) plus whatever latency estimates it
// happens to have. latency may be sparse or nil; clients without an entry
// are adopted into the EWMA map at their first Observe, so the Manager's
// per-client bookkeeping stays keyed on ever-selected clients only.
// Rebuilds re-place only clients with latency estimates — everyone else
// keeps their current tier (see MaybeRetier).
func NewManagerWithTiers(cfg Config, tiers [][]int, latency map[int]float64) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.ClientsPerRound <= 0 {
		return nil, fmt.Errorf("tiering: ClientsPerRound = %d", cfg.ClientsPerRound)
	}
	if cfg.EWMABeta <= 0 || cfg.EWMABeta > 1 {
		return nil, fmt.Errorf("tiering: EWMABeta = %v", cfg.EWMABeta)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("tiering: no initial tiers")
	}
	if cfg.NumTiers > 0 && cfg.NumTiers != len(tiers) {
		return nil, fmt.Errorf("tiering: NumTiers %d != %d initial tiers", cfg.NumTiers, len(tiers))
	}
	cfg.NumTiers = len(tiers)
	m := &Manager{
		cfg:       cfg,
		tierOf:    make(map[int]int),
		ewma:      make(map[int]float64, len(latency)),
		commBytes: make(map[int]float64),
		placed:    make(map[int]float64, len(latency)),
		pinned:    make(map[int]bool),
		probs:     make([]float64, len(tiers)),
		draws:     make([]int, len(tiers)),
	}
	m.tiers = copyTiers(tiers)
	for t, members := range m.tiers {
		if len(members) == 0 {
			return nil, fmt.Errorf("tiering: initial tier %d is empty", t)
		}
		for _, c := range members {
			if prev, dup := m.tierOf[c]; dup {
				return nil, fmt.Errorf("tiering: client %d in tiers %d and %d", c, prev, t)
			}
			m.tierOf[c] = t
		}
	}
	for c, l := range latency {
		m.ewma[c] = l
		m.placed[c] = l
	}
	m.credits = make([]int, len(tiers))
	for t := range m.probs {
		m.probs[t] = 1 / float64(len(tiers))
		if cfg.Credits > 0 {
			m.credits[t] = cfg.Credits
		} else {
			m.credits[t] = math.MaxInt
		}
	}
	return m, nil
}

// canonical converts built tiers to membership slices, preserving
// core.BuildTiers' deterministic member order (latency, then client ID).
// Keeping that order — rather than re-sorting — is what makes a Manager
// with re-tiering disabled reproduce the static engines' TierCohort draws
// exactly: the draw is a permutation over member positions.
func canonical(tiers []core.Tier) [][]int {
	out := make([][]int, len(tiers))
	for t, tr := range tiers {
		out[t] = append([]int(nil), tr.Members...)
	}
	return out
}

// Tiers returns a copy of the current membership, fastest tier first.
func (m *Manager) Tiers() [][]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return copyTiers(m.tiers)
}

func copyTiers(tiers [][]int) [][]int {
	out := make([][]int, len(tiers))
	for t, members := range tiers {
		out[t] = append([]int(nil), members...)
	}
	return out
}

// NumTiers returns the maintained tier count.
func (m *Manager) NumTiers() int { return m.cfg.NumTiers }

// TierOf returns a client's current tier.
func (m *Manager) TierOf(client int) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tierOf[client]
	return t, ok
}

// EWMA returns the tracked latency estimate for a client.
func (m *Manager) EWMA(client int) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.ewma[client]
	return v, ok
}

// Retiers returns how many rebuilds actually moved clients.
func (m *Manager) Retiers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retiers
}

// Log returns every applied reassignment in version order.
func (m *Manager) Log() []Reassignment {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Reassignment, len(m.log))
	for i, r := range m.log {
		out[i] = Reassignment{Version: r.Version, Moves: append([]Move(nil), r.Moves...)}
	}
	return out
}

// Pin excludes a client from migration: rebuilds leave it in its current
// tier. The socket runtime pins workers whose protocol predates
// MsgTierReassign, so they keep interoperating within their original tier.
func (m *Manager) Pin(client int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pinned[client] = true
}

// Observe folds one observed response latency into the client's EWMA.
// Unknown clients (late joiners) are adopted at the observed value but do
// not enter a tier until the next rebuild.
func (m *Manager) Observe(client int, seconds float64) {
	if seconds <= 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return // clock glitches and legacy zero reports must not poison EWMAs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fold(client, seconds)
}

// fold applies the EWMA update for one validated latency sample. Callers
// hold mu.
func (m *Manager) fold(client int, seconds float64) {
	prev, ok := m.ewma[client]
	if !ok {
		m.ewma[client] = seconds
		return
	}
	m.ewma[client] = (1-m.cfg.EWMABeta)*prev + m.cfg.EWMABeta*seconds
}

// ObserveRound is the full per-round observation (flcore.CommObserver):
// the client's compute-side seconds, the end-to-end response time measured
// at the aggregator, and the wire bytes the round moved for this client.
// With CommAware set, the end-to-end time is what enters the latency EWMA
// — so a fast trainer behind a slow link ranks slow, which is what
// re-tiering should see; otherwise the compute-side seconds are folded
// exactly as Observe would, keeping pre-existing placement behavior.
// Bytes are folded into a separate per-client EWMA (CommBytes) in both
// modes. Non-positive or non-finite values are dropped field by field,
// falling back from end-to-end to seconds when only the former is bad.
func (m *Manager) ObserveRound(client int, seconds, endToEnd float64, bytes int64) {
	lat := seconds
	if m.cfg.CommAware && endToEnd > 0 && !math.IsNaN(endToEnd) && !math.IsInf(endToEnd, 0) {
		lat = endToEnd
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if lat > 0 && !math.IsNaN(lat) && !math.IsInf(lat, 0) {
		m.fold(client, lat)
	}
	if bytes > 0 {
		prev, ok := m.commBytes[client]
		if !ok {
			m.commBytes[client] = float64(bytes)
		} else {
			m.commBytes[client] = (1-m.cfg.EWMABeta)*prev + m.cfg.EWMABeta*float64(bytes)
		}
	}
}

// CommBytes returns the tracked per-round wire-byte estimate for a client.
func (m *Manager) CommBytes(client int) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.commBytes[client]
	return v, ok
}

// ObserveAccuracy records per-tier test accuracies (index = tier, NaN for
// tiers without data) and recomputes the Algorithm-2 selection
// probabilities from them.
func (m *Manager) ObserveAccuracy(accs []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(accs) != len(m.tiers) {
		return
	}
	m.probs = core.AdaptiveProbs(accs, m.cfg.Temperature)
	m.haveAccs = true
}

// Probabilities returns a copy of the current tier-selection probabilities.
func (m *Manager) Probabilities() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]float64(nil), m.currentProbs()...)
}

// currentProbs is the live probability vector: accuracy-driven once
// ObserveAccuracy has fired, otherwise (adaptive runs without evaluation
// data, e.g. over sockets) inverse commit shares — tiers that have drawn
// fewer cohorts get boosted, the credit-relevant dimension. Callers hold mu.
func (m *Manager) currentProbs() []float64 {
	if m.haveAccs || !m.cfg.Adaptive {
		return m.probs
	}
	out := make([]float64, len(m.draws))
	total := 0.0
	for t, d := range m.draws {
		out[t] = 1 / float64(d+1)
		total += out[t]
	}
	for t := range out {
		out[t] /= total
	}
	return out
}

// CreditsRemaining returns a copy of the per-tier credit counters.
func (m *Manager) CreditsRemaining() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.credits...)
}

// Cohort draws tier t's participants for its local round r. want ≤ 0 uses
// the configured ClientsPerRound. The draw is flcore.TierCohort's
// (seed, tier round, tier) keying over the tier's current members; with
// Adaptive on, the size is scaled by the tier's selection probability
// (p_t·m, the uniform-relative boost), clamped to [1, 2·want], and a tier
// whose credits are exhausted is capped back at the uniform size — each
// boosted round consumes one credit, so Credits_t bounds the extra
// participation a struggling tier can claim.
func (m *Manager) Cohort(tier, tierRound, want int) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tier < 0 || tier >= len(m.tiers) {
		return nil
	}
	if want <= 0 {
		want = m.cfg.ClientsPerRound
	}
	members := m.tiers[tier]
	if len(members) == 0 {
		return nil
	}
	size := want
	if m.cfg.Adaptive {
		boost := m.currentProbs()[tier] * float64(len(m.tiers))
		size = int(math.Round(float64(want) * boost))
		if size < 1 {
			size = 1
		}
		if size > 2*want {
			size = 2 * want
		}
		if size > want {
			if m.credits[tier] <= 0 {
				size = want
			} else if m.credits[tier] != math.MaxInt {
				m.credits[tier]--
			}
		}
	}
	m.draws[tier]++
	return flcore.TierCohort(m.cfg.Seed, tierRound, tier, members, size)
}

// MaybeRetier implements the rebuild point: at every RetierEvery-th global
// commit it re-tiers from the hysteresis-filtered EWMA estimates and
// reports the migrations. Rebuilds that would change the tier count
// (clients dropped below the tier count, equal-width collapse) are skipped
// — the engines' tier loops are fixed at construction — as are rebuilds
// that move nobody.
func (m *Manager) MaybeRetier(version int) ([][]int, []flcore.TierMove, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.RetierEvery <= 0 || version <= 0 || version%m.cfg.RetierEvery != 0 || version == m.lastVersion {
		return nil, nil, false
	}
	m.lastVersion = version
	m.rebuilds++

	// Hysteresis: a client's effective latency stays frozen at its last
	// placement value until the EWMA has moved by more than the threshold.
	eff := make(map[int]float64, len(m.ewma))
	for c, est := range m.ewma {
		base, ok := m.placed[c]
		if !ok {
			base = est // late joiner: adopt at its EWMA
		}
		if m.cfg.Hysteresis < 0 || math.Abs(est-base) > m.cfg.Hysteresis*base {
			base = est
		}
		eff[c] = base
	}

	cand := core.BuildTiers(eff, m.cfg.NumTiers, m.cfg.strategy())
	if len(cand) != m.cfg.NumTiers {
		m.skipped++
		return nil, nil, false
	}
	next := canonical(cand)

	// Members without a latency estimate are not re-placed: they keep
	// their current tier. A full-profile Manager (NewManager) never hits
	// this — every member was profiled — but a sparse Manager over a lazy
	// population (NewManagerWithTiers) only ever hears about selected
	// clients, and a rebuild must not drop the silent majority from
	// membership. Ascending client order keeps the result independent of
	// map iteration order.
	var unseen []int
	for c := range m.tierOf {
		if _, ok := eff[c]; !ok {
			unseen = append(unseen, c)
		}
	}
	sort.Ints(unseen)
	for _, c := range unseen {
		next[m.tierOf[c]] = append(next[m.tierOf[c]], c)
	}

	// Pinned clients stay put: pull each one back into its current tier.
	// Pulled-back clients append in ascending client order so the result
	// is independent of map iteration order.
	pinned := make([]int, 0, len(m.pinned))
	for c := range m.pinned {
		pinned = append(pinned, c)
	}
	sort.Ints(pinned)
	for _, c := range pinned {
		cur, ok := m.tierOf[c]
		if !ok {
			continue
		}
		for t := range next {
			if t == cur {
				continue
			}
			if i := indexOf(next[t], c); i >= 0 {
				next[t] = append(next[t][:i], next[t][i+1:]...)
				next[cur] = append(next[cur], c)
			}
		}
	}
	for t := range next {
		if len(next[t]) == 0 {
			m.skipped++ // pinning emptied a tier; keep the old membership
			return nil, nil, false
		}
	}

	// Commit the placement latencies the rebuild used, so the next
	// hysteresis window is measured from this placement.
	m.placed = eff

	var moves []flcore.TierMove
	nextOf := make(map[int]int, len(m.tierOf))
	for t, members := range next {
		for _, c := range members {
			nextOf[c] = t
		}
	}
	clients := make([]int, 0, len(nextOf))
	for c := range nextOf {
		clients = append(clients, c)
	}
	sort.Ints(clients)
	for _, c := range clients {
		if old, ok := m.tierOf[c]; ok && old != nextOf[c] {
			moves = append(moves, flcore.TierMove{Client: c, From: old, To: nextOf[c]})
		}
	}
	if len(moves) == 0 {
		return nil, nil, false
	}
	m.tiers = next
	m.tierOf = nextOf
	m.retiers++
	m.log = append(m.log, Reassignment{Version: version, Moves: append([]Move(nil), moves...)})
	return copyTiers(next), moves, true
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// String describes the Manager configuration and current state.
func (m *Manager) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("tiering.Manager(tiers=%d, retierEvery=%d, beta=%.2f, hysteresis=%.2f, adaptive=%v, retiers=%d)",
		len(m.tiers), m.cfg.RetierEvery, m.cfg.EWMABeta, m.cfg.Hysteresis, m.cfg.Adaptive, m.retiers)
}

var (
	_ flcore.TierManager  = (*Manager)(nil)
	_ flcore.CommObserver = (*Manager)(nil)
)
