package tiering

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/flcore"
)

// State is the serializable snapshot of a Manager, carried opaquely inside
// flcore.TieredCheckpoint.ManagerState. It captures everything behind the
// Manager's mutex — membership, EWMA latency estimates, hysteresis
// placements, pins, Algorithm-2 probabilities and credits, and the rebuild
// counters — so a restored Manager continues the run exactly where the
// checkpointed one stopped (same cohort draws, same rebuild points).
type State struct {
	Tiers    [][]int
	EWMA     map[int]float64
	Placed   map[int]float64
	Pinned   []int
	Probs    []float64
	HaveAccs bool
	Credits  []int
	Draws    []int

	Retiers, Rebuilds, Skipped, LastVersion int
	Log                                     []Reassignment

	// CommBytes carries the per-client wire-byte EWMAs (comm-aware
	// tiering). Snapshots from before the field gob-decode to nil, which
	// restores as an empty map — byte estimates simply rebuild from the
	// resumed run's observations.
	CommBytes map[int]float64
}

// SnapshotState serializes the Manager's current state with gob. It is
// the flcore.TierManagerState implementation that makes managed runs
// checkpointable.
func (m *Manager) SnapshotState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := State{
		Tiers:    copyTiers(m.tiers),
		EWMA:     make(map[int]float64, len(m.ewma)),
		Placed:   make(map[int]float64, len(m.placed)),
		Probs:    append([]float64(nil), m.probs...),
		HaveAccs: m.haveAccs,
		Credits:  append([]int(nil), m.credits...),
		Draws:    append([]int(nil), m.draws...),
		Retiers:  m.retiers, Rebuilds: m.rebuilds, Skipped: m.skipped,
		LastVersion: m.lastVersion,
	}
	for c, v := range m.ewma {
		s.EWMA[c] = v
	}
	s.CommBytes = make(map[int]float64, len(m.commBytes))
	for c, v := range m.commBytes {
		s.CommBytes[c] = v
	}
	for c, v := range m.placed {
		s.Placed[c] = v
	}
	for c := range m.pinned {
		s.Pinned = append(s.Pinned, c)
	}
	for _, r := range m.log {
		s.Log = append(s.Log, Reassignment{Version: r.Version, Moves: append([]Move(nil), r.Moves...)})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		return nil, fmt.Errorf("tiering: encoding manager state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState replaces the Manager's state with a blob produced by
// SnapshotState. The Manager must have been constructed with the same tier
// count the snapshot maintains (NewManager over any profile of the same
// population; the restored EWMAs supersede the profile's estimates).
func (m *Manager) RestoreState(data []byte) error {
	var s State
	r := bytes.NewReader(data)
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("tiering: decoding manager state: %w", err)
	}
	if r.Len() > 0 {
		return fmt.Errorf("tiering: manager state has %d bytes of trailing garbage", r.Len())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(s.Tiers) != m.cfg.NumTiers {
		return fmt.Errorf("tiering: state has %d tiers, manager maintains %d", len(s.Tiers), m.cfg.NumTiers)
	}
	if len(s.Probs) != len(s.Tiers) || len(s.Credits) != len(s.Tiers) || len(s.Draws) != len(s.Tiers) {
		return fmt.Errorf("tiering: state vectors (%d probs, %d credits, %d draws) do not match %d tiers",
			len(s.Probs), len(s.Credits), len(s.Draws), len(s.Tiers))
	}
	tierOf := make(map[int]int, len(s.EWMA))
	for t, members := range s.Tiers {
		if len(members) == 0 {
			return fmt.Errorf("tiering: state tier %d is empty", t)
		}
		for _, c := range members {
			if prev, dup := tierOf[c]; dup {
				return fmt.Errorf("tiering: state places client %d in tiers %d and %d", c, prev, t)
			}
			tierOf[c] = t
		}
	}
	m.tiers = copyTiers(s.Tiers)
	m.tierOf = tierOf
	m.ewma = make(map[int]float64, len(s.EWMA))
	for c, v := range s.EWMA {
		m.ewma[c] = v
	}
	m.placed = make(map[int]float64, len(s.Placed))
	for c, v := range s.Placed {
		m.placed[c] = v
	}
	m.commBytes = make(map[int]float64, len(s.CommBytes))
	for c, v := range s.CommBytes {
		m.commBytes[c] = v
	}
	m.pinned = make(map[int]bool, len(s.Pinned))
	for _, c := range s.Pinned {
		m.pinned[c] = true
	}
	m.probs = append([]float64(nil), s.Probs...)
	m.haveAccs = s.HaveAccs
	m.credits = append([]int(nil), s.Credits...)
	m.draws = append([]int(nil), s.Draws...)
	m.retiers, m.rebuilds, m.skipped = s.Retiers, s.Rebuilds, s.Skipped
	m.lastVersion = s.LastVersion
	m.log = m.log[:0]
	for _, rec := range s.Log {
		m.log = append(m.log, Reassignment{Version: rec.Version, Moves: append([]Move(nil), rec.Moves...)})
	}
	return nil
}

var _ flcore.TierManagerState = (*Manager)(nil)
