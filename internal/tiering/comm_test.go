package tiering

import (
	"math"
	"testing"
)

func commManager(t *testing.T, commAware bool) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		NumTiers: 2, ClientsPerRound: 2, CommAware: commAware,
		EWMABeta: 0.5,
	}, map[int]float64{0: 1, 1: 1.1, 2: 5, 3: 5.5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestObserveRoundCommAwareSignal(t *testing.T) {
	// CommAware off: ObserveRound must fold exactly what Observe would —
	// the compute-side seconds — so enriching the observation never
	// changes placement behavior on its own.
	m := commManager(t, false)
	m.ObserveRound(0, 2, 40, 1024)
	got, _ := m.EWMA(0)
	want := 0.5*1 + 0.5*2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CommAware=false folded %v, want %v (seconds path)", got, want)
	}

	// CommAware on: the end-to-end time is the signal.
	m = commManager(t, true)
	m.ObserveRound(0, 2, 40, 1024)
	got, _ = m.EWMA(0)
	want = 0.5*1 + 0.5*40
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CommAware=true folded %v, want %v (end-to-end path)", got, want)
	}

	// Bad end-to-end values fall back to seconds instead of being dropped.
	m.ObserveRound(1, 3, math.NaN(), 0)
	got, _ = m.EWMA(1)
	want = 0.5*1.1 + 0.5*3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("NaN end-to-end folded %v, want %v (seconds fallback)", got, want)
	}
	m.ObserveRound(1, -1, -1, 0) // both bad: no fold at all
	if after, _ := m.EWMA(1); after != got {
		t.Fatalf("invalid observation moved EWMA %v -> %v", got, after)
	}
}

func TestObserveRoundBytesEWMA(t *testing.T) {
	m := commManager(t, false)
	if _, ok := m.CommBytes(0); ok {
		t.Fatal("byte estimate before any observation")
	}
	m.ObserveRound(0, 1, 1, 1000)
	if b, ok := m.CommBytes(0); !ok || b != 1000 {
		t.Fatalf("first byte observation = %v, %v", b, ok)
	}
	m.ObserveRound(0, 1, 1, 2000)
	if b, _ := m.CommBytes(0); math.Abs(b-1500) > 1e-9 {
		t.Fatalf("byte EWMA = %v, want 1500", b)
	}
	m.ObserveRound(0, 1, 1, 0) // zero bytes: legacy sender, no fold
	if b, _ := m.CommBytes(0); math.Abs(b-1500) > 1e-9 {
		t.Fatalf("zero-byte observation moved estimate to %v", b)
	}
}

func TestCommBytesStateRoundTrip(t *testing.T) {
	m := commManager(t, true)
	m.ObserveRound(0, 1, 2, 4096)
	m.ObserveRound(2, 1, 9, 512)
	blob, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	m2 := commManager(t, true)
	if err := m2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	for _, ci := range []int{0, 2} {
		a, okA := m.CommBytes(ci)
		b, okB := m2.CommBytes(ci)
		if okA != okB || a != b {
			t.Fatalf("client %d byte estimate %v/%v != restored %v/%v", ci, a, okA, b, okB)
		}
	}
	if _, ok := m2.CommBytes(1); ok {
		t.Fatal("restored manager invented a byte estimate")
	}
}
