package tiering

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/flcore"
)

// fourByThree is a 3-tier, 12-client explicit membership (fastest first).
func fourByThree() [][]int {
	return [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}
}

func TestManagerWithTiersCohortMatchesStaticDraw(t *testing.T) {
	m, err := NewManagerWithTiers(Config{ClientsPerRound: 2, Seed: 42}, fourByThree(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Tiers(); !reflect.DeepEqual(got, fourByThree()) {
		t.Fatalf("membership %v, want the explicit tiers", got)
	}
	// A sparse Manager without re-tiering must reproduce the static
	// TierCohort draw exactly — that is what keeps a Manager-driven
	// population-scale run equal to the unmanaged engine on the same seed.
	for tier := 0; tier < 3; tier++ {
		for round := 0; round < 5; round++ {
			want := flcore.TierCohort(42, round, tier, fourByThree()[tier], 2)
			got := m.Cohort(tier, round, 2)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("tier %d round %d cohort %v, want %v", tier, round, got, want)
			}
		}
	}
}

func TestManagerWithTiersValidation(t *testing.T) {
	if _, err := NewManagerWithTiers(Config{ClientsPerRound: 2}, nil, nil); err == nil {
		t.Fatal("no tiers accepted")
	}
	if _, err := NewManagerWithTiers(Config{ClientsPerRound: 2}, [][]int{{0}, {}}, nil); err == nil {
		t.Fatal("empty tier accepted")
	}
	if _, err := NewManagerWithTiers(Config{ClientsPerRound: 2}, [][]int{{0, 1}, {1}}, nil); err == nil {
		t.Fatal("duplicated client accepted")
	}
	if _, err := NewManagerWithTiers(Config{ClientsPerRound: 2, NumTiers: 5}, fourByThree(), nil); err == nil {
		t.Fatal("NumTiers mismatch accepted")
	}
	if _, err := NewManagerWithTiers(Config{ClientsPerRound: 0}, fourByThree(), nil); err == nil {
		t.Fatal("ClientsPerRound 0 accepted")
	}
}

// TestSparseRebuildKeepsUnobservedClients is the population-scale rebuild
// contract: a Manager constructed with no latency profile only ever hears
// about selected clients, and a rebuild must re-place exactly those while
// the silent majority keeps its current tier.
func TestSparseRebuildKeepsUnobservedClients(t *testing.T) {
	m, err := NewManagerWithTiers(Config{ClientsPerRound: 2, Seed: 1, RetierEvery: 1, Hysteresis: -1}, fourByThree(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Three observations with inverted speeds: the tier-0 client turns out
	// slowest, the tier-2 client fastest.
	m.Observe(0, 100)
	m.Observe(4, 1)
	m.Observe(8, 0.01)
	tiers, moves, changed := m.MaybeRetier(1)
	if !changed {
		t.Fatal("rebuild with moved estimates reported no change")
	}
	// Every registered client must still be in exactly one tier.
	var all []int
	for _, members := range tiers {
		all = append(all, members...)
	}
	sort.Ints(all)
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}; !reflect.DeepEqual(all, want) {
		t.Fatalf("membership after sparse rebuild %v, want %v", all, want)
	}
	// Observed clients moved by their estimates; unobserved stayed put.
	tierOf := func(c int) int {
		for ti, members := range tiers {
			for _, m := range members {
				if m == c {
					return ti
				}
			}
		}
		return -1
	}
	if got := tierOf(0); got != 2 {
		t.Fatalf("slow client 0 in tier %d, want 2", got)
	}
	if got := tierOf(8); got != 0 {
		t.Fatalf("fast client 8 in tier %d, want 0", got)
	}
	for _, c := range []int{1, 2, 3} {
		if got := tierOf(c); got != 0 {
			t.Fatalf("unobserved client %d migrated to tier %d", c, got)
		}
	}
	for _, c := range []int{5, 6, 7} {
		if got := tierOf(c); got != 1 {
			t.Fatalf("unobserved client %d migrated to tier %d", c, got)
		}
	}
	for _, c := range []int{9, 10, 11} {
		if got := tierOf(c); got != 2 {
			t.Fatalf("unobserved client %d migrated to tier %d", c, got)
		}
	}
	for _, mv := range moves {
		if mv.Client != 0 && mv.Client != 8 {
			t.Fatalf("unobserved client %d reported as migrated: %+v", mv.Client, mv)
		}
	}
}

// TestSparseRebuildSkippedBelowTierCount: with fewer observed clients than
// tiers, BuildTiers cannot produce the maintained tier count, so the
// rebuild is skipped and membership is untouched.
func TestSparseRebuildSkippedBelowTierCount(t *testing.T) {
	m, err := NewManagerWithTiers(Config{ClientsPerRound: 2, Seed: 1, RetierEvery: 1}, fourByThree(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(0, 100)
	m.Observe(4, 1)
	if _, _, changed := m.MaybeRetier(1); changed {
		t.Fatal("rebuild from 2 observations of a 3-tier population was not skipped")
	}
	if got := m.Tiers(); !reflect.DeepEqual(got, fourByThree()) {
		t.Fatalf("membership changed on a skipped rebuild: %v", got)
	}
}
