package tiering

import (
	"reflect"
	"testing"
)

// stateFixture builds a Manager, feeds it observations, and forces a
// rebuild so every piece of internal state is non-trivial before the
// snapshot.
func stateFixture(t *testing.T) *Manager {
	t.Helper()
	prof := map[int]float64{}
	for i := 0; i < 9; i++ {
		prof[i] = float64(1+i%3) * 0.5
	}
	m, err := NewManager(Config{
		NumTiers: 3, RetierEvery: 4, ClientsPerRound: 2, Seed: 7,
		Adaptive: true, Credits: 5,
	}, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Drift the fast clients slow, feed accuracies, cross a rebuild point,
	// and burn some adaptive draws so probs/credits/log all move.
	for i := 0; i < 3; i++ {
		m.Observe(i, 9.0)
	}
	m.ObserveAccuracy([]float64{0.2, 0.5, 0.8})
	m.MaybeRetier(4)
	for r := 0; r < 3; r++ {
		for tier := 0; tier < 3; tier++ {
			m.Cohort(tier, r, 2)
		}
	}
	return m
}

func TestManagerStateRoundTrip(t *testing.T) {
	src := stateFixture(t)
	data, err := src.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh Manager built from a DIFFERENT profile: every
	// estimate must come from the snapshot, not the constructor.
	prof := map[int]float64{}
	for i := 0; i < 9; i++ {
		prof[i] = 1.0
	}
	dst, err := NewManager(Config{
		NumTiers: 3, RetierEvery: 4, ClientsPerRound: 2, Seed: 7,
		Adaptive: true, Credits: 5,
	}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(data); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(dst.Tiers(), src.Tiers()) {
		t.Fatalf("tiers differ: %v vs %v", dst.Tiers(), src.Tiers())
	}
	if !reflect.DeepEqual(dst.Probabilities(), src.Probabilities()) {
		t.Fatalf("probabilities differ: %v vs %v", dst.Probabilities(), src.Probabilities())
	}
	if !reflect.DeepEqual(dst.CreditsRemaining(), src.CreditsRemaining()) {
		t.Fatalf("credits differ: %v vs %v", dst.CreditsRemaining(), src.CreditsRemaining())
	}
	if !reflect.DeepEqual(dst.Log(), src.Log()) {
		t.Fatalf("re-tier logs differ")
	}
	for i := 0; i < 9; i++ {
		sv, sok := src.EWMA(i)
		dv, dok := dst.EWMA(i)
		if sok != dok || sv != dv {
			t.Fatalf("EWMA for client %d differs: %v/%v vs %v/%v", i, sv, sok, dv, dok)
		}
	}
	// The restored Manager must continue the run identically: same cohort
	// draws and same rebuild decisions.
	for r := 3; r < 6; r++ {
		for tier := 0; tier < 3; tier++ {
			a, b := src.Cohort(tier, r, 2), dst.Cohort(tier, r, 2)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("tier %d round %d cohorts diverge: %v vs %v", tier, r, a, b)
			}
		}
	}
	at, am, ac := src.MaybeRetier(8)
	bt, bm, bc := dst.MaybeRetier(8)
	if ac != bc || !reflect.DeepEqual(at, bt) || !reflect.DeepEqual(am, bm) {
		t.Fatalf("post-restore rebuilds diverge: (%v,%v,%v) vs (%v,%v,%v)", at, am, ac, bt, bm, bc)
	}
}

func TestManagerRestoreStateValidation(t *testing.T) {
	src := stateFixture(t)
	good, err := src.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	if err := src.RestoreState([]byte("garbage")); err == nil {
		t.Error("garbage blob accepted")
	}
	if err := src.RestoreState(append(append([]byte(nil), good...), 0x01)); err == nil {
		t.Error("trailing garbage accepted")
	}

	// A snapshot from a Manager with a different tier count must not load.
	other, err := NewManager(Config{NumTiers: 2, ClientsPerRound: 2, Seed: 7},
		map[int]float64{0: 1, 1: 2, 2: 3, 3: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := other.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.RestoreState(blob); err == nil {
		t.Error("wrong-tier-count state accepted")
	}

	// After any rejected restore the Manager must still work.
	if err := src.RestoreState(good); err != nil {
		t.Fatalf("valid state rejected after failed attempts: %v", err)
	}
	if got := src.Cohort(0, 0, 2); len(got) == 0 {
		t.Fatal("manager unusable after restore")
	}
}
