package tifl_test

import (
	"fmt"
	"math/rand"

	tifl "repro"
	"repro/internal/dataset"
	"repro/internal/flcore"
	"repro/internal/nn"
	"repro/internal/simres"
)

// ExampleSystem_TrainTieredAsync trains a small heterogeneous federation
// with the FedAT-style tiered-asynchronous engine: TiFL's profiling and
// tiering first groups the clients by speed, then each tier runs its own
// synchronous mini-FedAvg rounds while commits flow asynchronously into the
// global model with staleness-discounted, slower-tier-favoring weights.
func ExampleSystem_TrainTieredAsync() {
	// 9 clients over three CPU groups (4 / 1 / 0.25 cores) holding IID
	// shards of a synthetic MNIST-like problem.
	train := dataset.Generate(dataset.MNISTLike, 600, 1)
	test := dataset.Generate(dataset.MNISTLike, 200, 2)
	parts := dataset.PartitionIID(train.Len(), 9, rand.New(rand.NewSource(3)))
	cpus := simres.AssignGroups(9, []float64{4, 1, 0.25})
	clients := flcore.BuildClients(train, test, parts, cpus, 20, 4)

	// New profiles every client and builds the latency tiers.
	sys, err := tifl.New(clients, tifl.Options{NumTiers: 3})
	if err != nil {
		panic(err)
	}

	// 60 simulated seconds of tiered-asynchronous training. FedAT's
	// cross-tier weights are the default.
	res := sys.TrainTieredAsync(tifl.TieredAsyncConfig{
		Duration: 60, ClientsPerRound: 2, Seed: 7, BatchSize: 10,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, dataset.MNISTLike.Dim, []int{8}, 10, 0)
		},
		Optimizer: func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		EvalBatch: 64,
	}, test)

	fmt.Printf("tiers: %d\n", len(res.Commits))
	fmt.Printf("fast tier outcommitted the slow tier: %v\n", res.Commits[0] > res.Commits[2])
	fmt.Printf("every commit was staleness-weighted: %v\n", len(res.TierRounds) > 0)
	fmt.Printf("learned above chance: %v\n", res.FinalAcc > 0.2)
	// Output:
	// tiers: 3
	// fast tier outcommitted the slow tier: true
	// every commit was staleness-weighted: true
	// learned above chance: true
}
