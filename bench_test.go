package tifl

// One testing.B benchmark per table and figure of the paper (see DESIGN.md
// §4 for the experiment index), plus the ablation benches and
// microbenchmarks of the hot substrate paths. Each figure bench executes
// the full experiment pipeline — population build, profiling, tiering, and
// every policy's training run — at a reduced scale; run cmd/tifl-bench
// with -full for paper-scale numbers.

import (
	"encoding/gob"
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/flcore"
	"repro/internal/flnet"
	"repro/internal/nn"
	"repro/internal/simres"
	"repro/internal/tensor"
)

// benchScale keeps each figure bench in the hundreds-of-milliseconds range.
func benchScale() experiments.Scale {
	s := experiments.SmallScale()
	s.Rounds = 20
	s.LEAFRounds = 20
	s.TrainSize = 2500
	s.TestSize = 500
	s.EvalEvery = 5
	return s
}

func BenchmarkFig1aHeterogeneityStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig1a(benchScale())
	}
}

func BenchmarkFig1bNonIIDStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig1b(benchScale())
	}
}

func BenchmarkTable2EstimationModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(benchScale())
	}
}

func BenchmarkFig3Cifar10Policies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig3(benchScale())
	}
}

func BenchmarkFig4NonIIDPolicies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig4(benchScale())
	}
}

func BenchmarkFig5MNISTFMNIST(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig5(benchScale())
	}
}

func BenchmarkFig6CombinedHeterogeneity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig6(benchScale())
	}
}

func BenchmarkFig7Adaptive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig7(benchScale())
	}
}

func BenchmarkFig8AdaptiveNonIID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(benchScale())
	}
}

func BenchmarkFig9LEAF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig9(benchScale())
	}
}

func BenchmarkExtensionBaselines(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunExtensionBaselines(benchScale())
	}
}

func BenchmarkExtensionDrift(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunExtensionDrift(benchScale())
	}
}

func BenchmarkExtensionTieredAsync(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunExtensionTieredAsync(benchScale())
	}
}

func BenchmarkExtensionLiveRetier(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunExtensionLiveRetier(benchScale())
	}
}

func BenchmarkExtensionDownlink(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunExtensionDownlink(benchScale())
	}
}

// BenchmarkExtMillion runs the population-scale event-driven engine at a
// CI-smoke population (10k registered clients) and reports the scale
// metrics the BENCH artifact tracks: commit throughput against wall clock
// and uplink bytes per committed client update.
func BenchmarkExtMillion(b *testing.B) {
	b.ReportAllocs()
	s := experiments.SmallScale()
	s.Population = 10_000
	var last experiments.MillionOutcome
	for i := 0; i < b.N; i++ {
		last = experiments.MillionRun(s)
	}
	b.ReportMetric(last.RoundsPerSec, "rounds/sec")
	b.ReportMetric(last.BytesPerClientUpdate, "bytes/client")
	b.ReportMetric(float64(last.PeakHeapBytes)/(1<<20), "peakheapMB")
}

func BenchmarkExtensionStaleness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunExtensionStaleness(benchScale())
	}
}

func BenchmarkAblationTieringStrategy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunAblationTiering(benchScale())
	}
}

func BenchmarkAblationTierCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunAblationTierCount(benchScale())
	}
}

func BenchmarkAblationCredits(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunAblationCredits(benchScale())
	}
}

func BenchmarkAblationChangeProbs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunAblationTemperature(benchScale())
	}
}

func BenchmarkAblationCNNSubstrate(b *testing.B) {
	b.ReportAllocs()
	s := benchScale()
	s.Rounds = 10 // conv rounds are ~20x costlier than MLP rounds
	for i := 0; i < b.N; i++ {
		experiments.RunAblationCNN(s)
	}
}

// --- Microbenchmarks of the hot substrate paths. ---

func BenchmarkMatMul128(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 0, 1, 128, 128)
	y := tensor.RandNormal(rng, 0, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkFedAvg50Clients(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(2))
	ups := make([]flcore.Update, 50)
	for i := range ups {
		w := make([]float64, 2000)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		ups[i] = flcore.Update{Weights: w, NumSamples: 1 + i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flcore.FedAvg(ups)
	}
}

func BenchmarkLocalClientTraining(b *testing.B) {
	b.ReportAllocs()
	train := dataset.Generate(dataset.CIFAR10Like, 400, 1)
	rng := rand.New(rand.NewSource(3))
	model := nn.NewMLP(rng, train.Dim(), []int{32}, 10, 0)
	opt := nn.NewRMSprop(0.01, 0.995)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train.Batches(10, rng, func(x *tensor.Tensor, y []int) {
			model.TrainBatch(x, y, opt)
		})
	}
}

func BenchmarkProfiling50Clients(b *testing.B) {
	b.ReportAllocs()
	train := dataset.Generate(dataset.CIFAR10Like, 2500, 1)
	parts := dataset.PartitionIID(train.Len(), 50, rand.New(rand.NewSource(1)))
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	clients := flcore.BuildClients(train, nil, parts, cpus, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof := core.Profile(clients, simres.DefaultModel, core.DefaultProfiler)
		core.BuildTiers(prof.Latency, 5, core.Quantile)
	}
}

func BenchmarkAdaptiveSelection(b *testing.B) {
	b.ReportAllocs()
	train := dataset.Generate(dataset.CIFAR10Like, 2500, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 500, 2)
	parts := dataset.PartitionIID(train.Len(), 50, rand.New(rand.NewSource(1)))
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	clients := flcore.BuildClients(train, test, parts, cpus, 40, 1)
	prof := core.Profile(clients, simres.DefaultModel, core.DefaultProfiler)
	tiers := core.BuildTiers(prof.Latency, 5, core.Quantile)
	sel := core.NewAdaptiveSelector(tiers, clients, core.AdaptiveConfig{ClientsPerRound: 5, Interval: 10, TestPerTier: 100})
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Select(i, rng)
	}
}

func BenchmarkTieredAsync50Clients(b *testing.B) {
	b.ReportAllocs()
	train := dataset.Generate(dataset.CIFAR10Like, 2500, 1)
	test := dataset.Generate(dataset.CIFAR10Like, 500, 2)
	parts := dataset.PartitionIID(train.Len(), 50, rand.New(rand.NewSource(1)))
	cpus := simres.AssignGroups(50, simres.GroupsCIFAR)
	clients := flcore.BuildClients(train, test, parts, cpus, 40, 1)
	prof := core.Profile(clients, simres.DefaultModel, core.DefaultProfiler)
	tiers := core.TierMembers(core.BuildTiers(prof.Latency, 5, core.Quantile))
	cfg := flcore.TieredAsyncConfig{
		Duration: 60, ClientsPerRound: 5, EvalInterval: 30,
		Seed: 2, BatchSize: 10, LocalEpochs: 1,
		Model: func(rng *rand.Rand) *nn.Model {
			return nn.NewMLP(rng, train.Dim(), []int{32}, 10, 0)
		},
		Optimizer:  func(round int) nn.Optimizer { return nn.NewRMSprop(0.01, 0.995) },
		Latency:    simres.DefaultModel,
		TierWeight: core.FedATWeights(),
		EvalBatch:  256,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flcore.RunTieredAsync(cfg, tiers, clients, test)
	}
}

func BenchmarkGlobalEvaluation(b *testing.B) {
	b.ReportAllocs()
	test := dataset.Generate(dataset.CIFAR10Like, 1000, 1)
	model := nn.NewMLP(rand.New(rand.NewSource(1)), test.Dim(), []int{32}, 10, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Evaluate(test.X, test.Y, 256)
	}
}

// BenchmarkAggregation measures the chunk-parallel sharded FedAvg reduction
// at realistic scale: 20 clients aggregating a 100k-parameter model.
func BenchmarkAggregation(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	ups := make([]flcore.Update, 20)
	for i := range ups {
		w := make([]float64, 100_000)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		ups[i] = flcore.Update{Weights: w, NumSamples: 1 + i}
	}
	dst := make([]float64, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flcore.FedAvgInto(dst, ups)
	}
}

// BenchmarkWireEncode compares the legacy gob []float64 weight payload with
// the fast-wire bulk encoding (Train.Raw) for a 100k-parameter broadcast —
// the per-element reflection the fast wire eliminates.
func BenchmarkWireEncode(b *testing.B) {
	w := make([]float64, 100_000)
	rng := rand.New(rand.NewSource(6))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.Run("gob-dense", func(b *testing.B) {
		b.ReportAllocs()
		enc := gob.NewEncoder(io.Discard)
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&flnet.Envelope{Type: flnet.MsgTrain, Train: &flnet.Train{Round: i, Weights: w}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast-raw", func(b *testing.B) {
		b.ReportAllocs()
		enc := gob.NewEncoder(io.Discard)
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(&flnet.Envelope{Type: flnet.MsgTrain, Train: &flnet.Train{Round: i, Raw: nn.EncodeWeights(w)}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
