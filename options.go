package tifl

import (
	"flag"
	"time"

	"repro/internal/compress"
)

// Shared option sub-structs. The tiering, compression, and checkpointing
// knobs used to be duplicated field-by-field across Options (simulation),
// NetOptions (flat distributed), and tifl-node's hand-rolled flag list;
// they now live here once and are embedded wherever they apply, so the
// three surfaces cannot drift. Field promotion keeps every existing
// `opts.RetierEvery`-style access compiling; only composite literals that
// named the moved fields need the embedded struct spelled out.

// TieringOptions are the live-tiering knobs (internal/tiering): they make
// tiered-async jobs re-tier mid-run instead of freezing the profiled
// tiers. Embedded in Options (system-wide defaults) and NetOptions
// (per-distributed-job overrides; see Overlay).
type TieringOptions struct {
	// RetierEvery rebuilds tiers from observed latencies every k global
	// commits (0 keeps the profiled tiers frozen, the paper's one-shot
	// Section 4.2 behaviour).
	RetierEvery int
	// EWMABeta weights new latency observations in the live estimates
	// (0 defaults to 0.5).
	EWMABeta float64
	// AdaptiveSelection enables Algorithm-2 selection inside the tier
	// loops: accuracy-driven tier probabilities size each tier's cohorts
	// under per-tier Credits budgets.
	AdaptiveSelection bool
	// Credits is the per-tier boosted-round budget Credits_t for
	// AdaptiveSelection (0 = unlimited).
	Credits int
}

// Overlay merges o over base: non-zero fields of o win (AdaptiveSelection
// when set). This is the NetOptions-over-Options precedence every
// distributed job applies.
func (o TieringOptions) Overlay(base TieringOptions) TieringOptions {
	if o.RetierEvery > 0 {
		base.RetierEvery = o.RetierEvery
	}
	if o.EWMABeta > 0 {
		base.EWMABeta = o.EWMABeta
	}
	if o.AdaptiveSelection {
		base.AdaptiveSelection = true
	}
	if o.Credits > 0 {
		base.Credits = o.Credits
	}
	return base
}

// Live reports whether these options ask for a live tiering Manager.
func (o TieringOptions) Live() bool { return o.RetierEvery > 0 || o.AdaptiveSelection }

// AddFlags registers the live-tiering flags on fs, bound to o's fields
// with its current values as defaults (tifl-node's flag surface).
func (o *TieringOptions) AddFlags(fs *flag.FlagSet) {
	fs.IntVar(&o.RetierEvery, "retier-every", o.RetierEvery,
		"tiered-aggregator: rebuild tiers every k commits from observed latencies (0 = frozen tiers)")
	fs.Float64Var(&o.EWMABeta, "ewma-beta", o.EWMABeta,
		"tiered-aggregator: EWMA weight of new latency observations (0 = default 0.5)")
	fs.BoolVar(&o.AdaptiveSelection, "adaptive-select", o.AdaptiveSelection,
		"tiered-aggregator: Algorithm-2 adaptive per-tier cohort sizing")
	fs.IntVar(&o.Credits, "credits", o.Credits,
		"tiered-aggregator: per-tier boosted-round budget for -adaptive-select (0 = unlimited)")
}

// CompressionOptions are the update-compression knobs. Embedded in Options
// (system-wide default codec) and NetOptions (per-job codec and the
// tier-aware adaptive policy).
type CompressionOptions struct {
	// Compression, if set, is the update codec clients/workers apply to
	// their trained deltas (error-feedback residual kept client-side).
	Compression Codec
	// AdaptiveCompression makes the codec tier-aware on distributed runs:
	// workers in the slower half of the tiers negotiate the configured
	// codec (top-k@10% when none is configured) while fast-tier workers
	// stay dense. Ignored by the pure simulation paths.
	AdaptiveCompression bool
	// Downlink, if set, delta-compresses the broadcast direction: the
	// aggregator encodes each tier round's model as one shared delta
	// against the version-acked base delta-capable workers already hold,
	// falling back to a dense snapshot on first contact, resume, or ack
	// gap. nil keeps plain dense broadcasts. Applies identically to the
	// simulated and distributed tiered-async paths, so both report the
	// same DownlinkBytes on the same seed.
	Downlink *compress.Downlink
}

// TierCodec resolves the codec a worker profiled into tier (of numTiers,
// 0 = fastest) negotiates under this policy: the uniform Compression
// codec, or — under AdaptiveCompression — dense (nil) for the fast half of
// the tiers and the configured codec (top-k@10% when none is configured)
// for the slow half.
func (o CompressionOptions) TierCodec(tier, numTiers int) Codec {
	if !o.AdaptiveCompression {
		return o.Compression
	}
	if tier < (numTiers+1)/2 {
		return nil // fast half: dense updates
	}
	if o.Compression != nil {
		return o.Compression
	}
	return TopKCodec(0.1)
}

// ReassignPolicy is TierCodec's live counterpart: under
// AdaptiveCompression it returns the per-tier codec-spec function an
// aggregator uses to renegotiate a migrating worker's codec
// (flnet.TieredAsyncConfig.ReassignCodec), keeping the fast-half-dense /
// slow-half-compressed split intact through re-tierings. nil (the
// default) leaves codecs as negotiated at registration.
func (o CompressionOptions) ReassignPolicy() func(tier, numTiers int) string {
	if !o.AdaptiveCompression {
		return nil
	}
	return func(tier, numTiers int) string {
		if c := o.TierCodec(tier, numTiers); c != nil {
			return c.Name()
		}
		return "none"
	}
}

// AddFlags registers the compression flags on fs. -codec parses the spec
// eagerly ("none" | "int8" | "int8@<chunk>" | "topk@<fraction>"), so a bad
// spec fails at flag parse time, and "none" resolves to a nil codec (the
// dense path).
func (o *CompressionOptions) AddFlags(fs *flag.FlagSet) {
	fs.Func("codec", "uplink update compression: none | int8 | int8@<chunk> | topk@<fraction>", func(spec string) error {
		c, err := compress.Parse(spec)
		if err != nil {
			return err
		}
		if c.ID() == compress.IDNone {
			o.Compression = nil // dense updates, no compression path
		} else {
			o.Compression = c
		}
		return nil
	})
	fs.BoolVar(&o.AdaptiveCompression, "adaptive-compress", o.AdaptiveCompression,
		"tiered-aggregator: slow-half tiers compress (with -codec, default topk@0.1), fast half stays dense")
	fs.Func("downlink-codec", "broadcast compression: dense | delta | delta+int8 | delta+topk@<fraction>", func(spec string) error {
		dl, err := compress.ParseDownlink(spec)
		if err != nil {
			return err
		}
		o.Downlink = dl // nil for "dense": plain snapshots
		return nil
	})
}

// RobustnessOptions are the self-healing knobs of a distributed run: they
// turn the fail-stop socket layer into one that rides out worker flaps,
// child-aggregator crashes, and slow links. Embedded in NetOptions and
// registered as tifl-node flags (-reconnect, -rpc-timeout, -max-retries,
// -rejoin-wait). All zero values keep the strict fail-stop behaviour
// earlier PRs pinned, so existing jobs are unchanged.
type RobustnessOptions struct {
	// Reconnect makes workers survive connection loss: instead of
	// returning the first dial/read/write error, a worker re-dials with
	// capped exponential backoff (deterministic per-client jitter),
	// re-registers under its ClientID, re-enters the tier the aggregator
	// still holds for it, and resumes serving Train requests mid-run.
	Reconnect bool
	// RPCTimeout bounds every blocking protocol read and write (worker
	// recv, aggregator send, child↔root link). 0 keeps blocking I/O —
	// required for Lockstep runs, which must not time-race the script.
	RPCTimeout time.Duration
	// MaxRetries is the aggregator-side redispatch budget: a tier-round
	// Train RPC that dies with its connection is re-sent — under the same
	// idempotent sequence number, so a retried round cannot double-count —
	// to the worker's replacement connection up to this many times. It
	// also caps a worker's reconnect attempts between successful
	// registrations (0 = the worker default of 8).
	MaxRetries int
	// RejoinWait is how long a dispatching aggregator waits for a dead
	// worker (or, at the tree root, the last dead child) to reconnect
	// before giving up on it. Defaults to 2s whenever MaxRetries > 0.
	RejoinWait time.Duration
}

// Overlay merges o over base: non-zero fields of o win (Reconnect when
// set) — the NetOptions-over-Options precedence.
func (o RobustnessOptions) Overlay(base RobustnessOptions) RobustnessOptions {
	if o.Reconnect {
		base.Reconnect = true
	}
	if o.RPCTimeout > 0 {
		base.RPCTimeout = o.RPCTimeout
	}
	if o.MaxRetries > 0 {
		base.MaxRetries = o.MaxRetries
	}
	if o.RejoinWait > 0 {
		base.RejoinWait = o.RejoinWait
	}
	return base
}

// AddFlags registers the robustness flags on fs with o's current values
// as defaults (tifl-node's flag surface).
func (o *RobustnessOptions) AddFlags(fs *flag.FlagSet) {
	fs.BoolVar(&o.Reconnect, "reconnect", o.Reconnect,
		"worker: survive connection loss via backoff re-dial and tier re-entry")
	fs.DurationVar(&o.RPCTimeout, "rpc-timeout", o.RPCTimeout,
		"per-RPC read/write deadline on every role (0 = blocking I/O)")
	fs.IntVar(&o.MaxRetries, "max-retries", o.MaxRetries,
		"aggregator: redispatch budget per dead in-flight Train RPC; worker: reconnect attempts (0 = default 8)")
	fs.DurationVar(&o.RejoinWait, "rejoin-wait", o.RejoinWait,
		"aggregator: wait for a dead worker/child to rejoin before abandoning it (0 = 2s when -max-retries set)")
}

// CheckpointOptions are the crash-safety knobs of a distributed run.
// Embedded in NetOptions and registered as tifl-node flags.
type CheckpointOptions struct {
	// CheckpointEvery, when positive, snapshots the run every so many
	// applied commits as a durable TieredCheckpoint at CheckpointPath
	// (written atomically; the previous snapshot is kept at
	// CheckpointPath+".prev").
	CheckpointEvery int
	// CheckpointPath is the durable snapshot file for CheckpointEvery.
	CheckpointPath string
}

// AddFlags registers the checkpoint flags on fs with o's current values as
// defaults.
func (o *CheckpointOptions) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.CheckpointPath, "checkpoint", o.CheckpointPath,
		"tiered-aggregator: durable snapshot file; resumes from it when it exists")
	fs.IntVar(&o.CheckpointEvery, "checkpoint-every", o.CheckpointEvery,
		"tiered-aggregator: snapshot every k applied commits (with -checkpoint)")
}
